//! The CDCL solver core.
//!
//! Modern (Glucose/splr-class) hot path on top of the classic MiniSat
//! skeleton:
//!
//! * **Blocker literals** in the watch lists: each watcher caches one
//!   literal of its clause, and a satisfied blocker skips the clause
//!   without dereferencing it. On the incremental SAT-attack formulas
//!   (hundreds of stacked netlist copies, most clauses satisfied at any
//!   moment) this removes the bulk of propagation's memory traffic.
//! * **LBD (glue) clause management**: every learnt clause carries its
//!   literal-block-distance; glue ≤ [`Solver::CORE_GLUE`] clauses are kept
//!   forever, mid-tier clauses survive while they keep participating in
//!   conflicts, and the local tier is halved on a conflict-count schedule.
//! * **Clause-arena garbage collection**: deleted clauses are physically
//!   compacted out of the arena and every cref in the watch lists and
//!   reason array is remapped ([`SolverStats::gc_runs`]), so long
//!   incremental runs no longer accumulate husks.
//! * **Glue-aware restarts** layered on the Luby sequence: a short-window
//!   LBD average that degrades past the long-run average forces an early
//!   restart, and an unusually deep trail postpones one (both purely
//!   work-count driven, so solving stays bit-deterministic).
//!
//! Phase saving across restarts lives in [`Solver::cancel_until`]: every
//! unassigned variable remembers its last polarity.

use std::fmt;

use lockbind_resil::CancelToken;

use crate::heap::VarHeap;
use crate::luby::luby;

/// Internal literal: `var * 2 + sign` (sign 1 = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Lit(u32);

impl Lit {
    fn new(var: u32, neg: bool) -> Lit {
        Lit(var * 2 + u32::from(neg))
    }
    fn from_dimacs(l: i32) -> Lit {
        debug_assert!(l != 0);
        Lit::new(l.unsigned_abs() - 1, l < 0)
    }
    fn var(self) -> u32 {
        self.0 >> 1
    }
    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
    fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Tag bit in [`Watcher::cref`] marking an *implicit binary clause*: the
/// blocker is the clause's only other literal, so propagation resolves the
/// watcher (satisfied, unit, or conflicting) without ever dereferencing the
/// clause. Binary clauses are never deleted, so the tag also skips the
/// husk check. Caps the arena at 2^31 clauses, far above reachable sizes.
const BINARY_TAG: u32 = 1 << 31;

/// A watch-list entry: the clause plus a cached *blocker* literal from it.
/// If the blocker is already true the clause is satisfied and propagation
/// skips it without touching the clause memory at all.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    /// Clause index, with [`BINARY_TAG`] set for two-literal clauses.
    cref: u32,
    blocker: Lit,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Literal-block distance at learn time, only ever lowered afterwards.
    glue: u32,
    /// Participated in a conflict since the last database reduction
    /// (mid-tier retention bit).
    used: bool,
    activity: f64,
    deleted: bool,
}

/// Literal-indexed assignment values: the array holds one byte per
/// *literal* (both polarities), so the propagation hot path reads a
/// literal's truth value with a single indexed byte compare — no sign
/// fold, no `Option` discriminant.
const VAL_FALSE: u8 = 0;
const VAL_TRUE: u8 = 1;
const VAL_UNDEF: u8 = 2;

/// Reads a literal's value from the literal-indexed assignment array (free
/// function so the hot loops can hold disjoint borrows of other fields).
#[inline]
fn lit_val(assign: &[u8], l: Lit) -> Option<bool> {
    match assign[l.index()] {
        VAL_TRUE => Some(true),
        VAL_FALSE => Some(false),
        _ => None,
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// The conflict budget ([`Solver::set_conflict_budget`]) ran out before
    /// the solve reached an answer. **Not** a proof of unsatisfiability:
    /// the formula's status is unknown. The solver state stays valid; the
    /// learnt clauses are kept and a re-solve resumes from them.
    BudgetExhausted,
    /// The interrupt token ([`Solver::set_interrupt`]) fired mid-solve —
    /// either an explicit cancel or a deadline expiry. The formula's status
    /// is unknown; the solver state stays valid for a later re-solve.
    Interrupted,
}

/// Number of buckets in [`SolverStats::glue_hist`]: glue values 1–7 land in
/// buckets 0–6, glue ≥ 8 in the last bucket.
pub const GLUE_HIST_BUCKETS: usize = 8;

/// Aggregate solver statistics, reset never (cumulative per solver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// `solve`/`solve_with_assumptions` calls completed.
    pub solves: u64,
    /// Learnt-database reductions performed.
    pub reduces: u64,
    /// Clause-arena garbage collections (compaction + cref remap).
    pub gc_runs: u64,
    /// Watcher visits resolved by the blocker literal alone (no clause
    /// dereference).
    pub blocker_hits: u64,
    /// Total watcher visits during propagation.
    pub watcher_visits: u64,
    /// Histogram of learnt-clause glue (LBD) at learn time: bucket `i`
    /// counts clauses with glue `i + 1`; the last bucket collects glue ≥
    /// [`GLUE_HIST_BUCKETS`].
    pub glue_hist: [u64; GLUE_HIST_BUCKETS],
}

impl SolverStats {
    /// Fraction of watcher visits short-circuited by the blocker literal
    /// (0 when nothing was propagated yet).
    pub fn blocker_hit_rate(&self) -> f64 {
        if self.watcher_visits == 0 {
            0.0
        } else {
            self.blocker_hits as f64 / self.watcher_visits as f64
        }
    }
}

/// A CDCL SAT solver. See the [crate docs](crate) for an example.
pub struct Solver {
    clauses: Vec<Clause>,
    /// Physically deleted-but-not-yet-compacted clauses in `clauses`.
    deleted_count: usize,
    /// `watches[lit.index()]`: watchers of clauses in which `lit` is watched.
    watches: Vec<Vec<Watcher>>,
    /// `assign[lit.index()]`: the literal's [`VAL_TRUE`]/[`VAL_FALSE`]/
    /// [`VAL_UNDEF`] value (two entries per variable, kept in sync).
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Stamp array indexed by decision level, for O(clause) LBD computation.
    level_stamp: Vec<u64>,
    stamp: u64,
    /// Formula already proven unsatisfiable at level 0.
    unsat: bool,
    stats: SolverStats,
    /// Cumulative-conflict threshold for the next database reduction.
    next_reduce: u64,
    /// Learnt-DB reduction + garbage collection enabled (disable only to
    /// build a reference solver for differential tests).
    reduce_enabled: bool,
    /// Ring buffer of the most recent learnt-clause glues (restart pacing).
    lbd_ring: Vec<u32>,
    lbd_ring_next: usize,
    lbd_ring_sum: u64,
    lbd_global_sum: u64,
    lbd_global_count: u64,
    trail_size_sum: u64,
    trail_size_count: u64,
    conflict_budget: Option<u64>,
    interrupt: Option<CancelToken>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// How many conflicts/decisions pass between interrupt-token polls.
    /// Small enough that a deadline stops a pathological solve within
    /// milliseconds, large enough that the clock read never shows up in a
    /// profile.
    pub const INTERRUPT_POLL_OPS: u32 = 128;

    /// Learnt clauses with glue at or below this are *core*: kept forever.
    pub const CORE_GLUE: u32 = 2;

    /// Learnt clauses with glue in `CORE_GLUE+1..=MID_GLUE` are *mid-tier*:
    /// they survive each reduction round they participated in a conflict
    /// during, and drop to the local tier otherwise.
    pub const MID_GLUE: u32 = 6;

    /// Conflicts before the first learnt-database reduction.
    const REDUCE_BASE: u64 = 2000;
    /// Extra conflicts granted per completed reduction.
    const REDUCE_INC: u64 = 300;
    /// Compact the arena when this many clauses are deleted (husks between
    /// GC runs are skipped lazily by propagation, so tiny compactions are
    /// not worth their cref-remap cost).
    const GC_MIN_DELETED: usize = 64;

    /// Window size of the recent-glue ring buffer (restart pacing).
    const LBD_RING: usize = 50;
    /// Force a restart when the windowed glue average exceeds the long-run
    /// average by this factor (learning is degrading).
    const GLUE_RESTART_FACTOR: f64 = 1.25;
    /// Postpone a restart (clear the window) when the trail is this much
    /// deeper than its long-run average (the search is making progress).
    const TRAIL_BLOCK_FACTOR: f64 = 1.4;
    /// Minimum conflicts between two glue-forced restarts.
    const GLUE_RESTART_SPACING: u64 = 50;

    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            deleted_count: 0,
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            level_stamp: vec![0],
            stamp: 0,
            unsat: false,
            stats: SolverStats::default(),
            next_reduce: Self::REDUCE_BASE,
            reduce_enabled: true,
            lbd_ring: Vec::new(),
            lbd_ring_next: 0,
            lbd_ring_sum: 0,
            lbd_global_sum: 0,
            lbd_global_count: 0,
            trail_size_sum: 0,
            trail_size_count: 0,
            conflict_budget: None,
            interrupt: None,
        }
    }

    /// Allocates a fresh variable and returns its positive DIMACS literal.
    pub fn new_var(&mut self) -> i32 {
        self.assign.push(VAL_UNDEF);
        self.assign.push(VAL_UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.level_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        let v = self.level.len() as u32 - 1;
        self.order.grow_to(self.level.len());
        self.order.push(v, &self.activity);
        v as i32 + 1
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.level.len() as u32
    }

    /// Ensures variables up to `var` (DIMACS, 1-based) exist.
    pub fn reserve_vars(&mut self, var: u32) {
        while self.num_vars() < var {
            let _ = self.new_var();
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Live (non-deleted) clauses in the database, problem and learnt.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.deleted_count
    }

    /// Physical clause-arena slots, including deleted husks not yet
    /// compacted away. Bounded by garbage collection: stays within
    /// [`Solver::GC_MIN_DELETED`] of [`Solver::num_clauses`].
    pub fn arena_len(&self) -> usize {
        self.clauses.len()
    }

    /// Enables or disables learnt-database reduction and arena garbage
    /// collection (default: enabled). Disabling turns the solver into the
    /// keep-everything reference used by the differential test suite; it
    /// does not undo reductions that already happened.
    pub fn set_db_reduction(&mut self, enabled: bool) {
        self.reduce_enabled = enabled;
    }

    /// Limits each subsequent solve call to approximately `conflicts`
    /// conflicts; `None` removes the limit. When the budget runs out the
    /// solve returns [`SolveResult::BudgetExhausted`] — explicitly *not*
    /// `Unsat`, so callers can tell a proven-secure instance from one the
    /// solver merely gave up on.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Installs (or clears) a cooperative-interrupt token. The solve loop
    /// polls it every [`Solver::INTERRUPT_POLL_OPS`] conflicts/decisions
    /// and returns [`SolveResult::Interrupted`] once it fires. The token is
    /// shared: cancelling any clone interrupts the solver.
    pub fn set_interrupt(&mut self, token: Option<CancelToken>) {
        self.interrupt = token;
    }

    fn interrupt_fired(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// Adds a clause of DIMACS literals, growing the variable space if
    /// needed. May be called between solves (incremental interface).
    ///
    /// # Panics
    /// Panics if any literal is 0.
    pub fn add_clause(&mut self, lits: &[i32]) {
        assert!(lits.iter().all(|&l| l != 0), "literal 0 is invalid");
        if let Some(max) = lits.iter().map(|l| l.unsigned_abs()).max() {
            self.reserve_vars(max);
        }
        // Adding clauses is only legal at decision level 0.
        self.cancel_until(0);
        if self.unsat {
            return;
        }
        // Simplify: drop duplicate/false-at-0 literals, detect tautology.
        let mut ls: Vec<Lit> = Vec::with_capacity(lits.len());
        for &dl in lits {
            let l = Lit::from_dimacs(dl);
            match self.lit_value(l) {
                Some(true) => return, // satisfied at level 0
                Some(false) => continue,
                None => {}
            }
            if ls.contains(&l) {
                continue;
            }
            if ls.contains(&l.negated()) {
                return; // tautology
            }
            ls.push(l);
        }
        match ls.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(ls[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach_clause(ls, false, 0);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, glue: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        debug_assert!(cref & BINARY_TAG == 0, "clause arena overflow");
        let tagged = if lits.len() == 2 {
            cref | BINARY_TAG
        } else {
            cref
        };
        self.watches[lits[0].index()].push(Watcher {
            cref: tagged,
            blocker: lits[1],
        });
        self.watches[lits[1].index()].push(Watcher {
            cref: tagged,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            glue,
            used: learnt,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
            let bucket = (glue.clamp(1, GLUE_HIST_BUCKETS as u32) - 1) as usize;
            self.stats.glue_hist[bucket] += 1;
        }
        cref
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        lit_val(&self.assign, l)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), None);
        let v = l.var() as usize;
        self.assign[l.index()] = VAL_TRUE;
        self.assign[l.negated().index()] = VAL_FALSE;
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal Boolean constraint propagation with blocker
    /// literals and an implicit-binary-clause fast path (neither touches
    /// the clause arena). Returns the conflicting clause ref, if any.
    fn propagate(&mut self) -> Option<u32> {
        // Stats accumulate in locals: these are the two hottest counts in
        // the workspace and per-visit field increments are measurable.
        let mut propagations = 0u64;
        let mut visits = 0u64;
        let mut hits = 0u64;
        let mut confl: Option<u32> = None;

        'queue: while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            propagations += 1;
            let not_p = p.negated();
            let mut ws = std::mem::take(&mut self.watches[not_p.index()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                visits += 1;
                let w = ws[i];
                // Fast path: the cached blocker satisfies the clause.
                let bval = lit_val(&self.assign, w.blocker);
                if bval == Some(true) {
                    hits += 1;
                    i += 1;
                    continue;
                }
                if w.cref & BINARY_TAG != 0 {
                    // Binary clause: the blocker is the only other literal,
                    // so it is unit (blocker unassigned) or conflicting
                    // (blocker false) — no clause dereference either way.
                    let cref = w.cref & !BINARY_TAG;
                    if bval == Some(false) {
                        self.watches[not_p.index()] = ws;
                        self.qhead = self.trail.len();
                        confl = Some(cref);
                        break 'queue;
                    }
                    self.enqueue(w.blocker, Some(cref));
                    i += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal is at position 1.
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == not_p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], not_p);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && lit_val(&self.assign, first) == Some(true) {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                {
                    let c = &mut self.clauses[cref];
                    for k in 2..c.lits.len() {
                        if lit_val(&self.assign, c.lits[k]) != Some(false) {
                            c.lits.swap(1, k);
                            let new_watch = c.lits[1];
                            self.watches[new_watch.index()].push(Watcher {
                                cref: w.cref,
                                blocker: first,
                            });
                            ws.swap_remove(i);
                            continue 'watchers;
                        }
                    }
                }
                // Clause is unit or conflicting.
                if lit_val(&self.assign, first) == Some(false) {
                    // Conflict: restore remaining watches and bail out.
                    self.watches[not_p.index()] = ws;
                    self.qhead = self.trail.len();
                    confl = Some(w.cref);
                    break 'queue;
                }
                self.enqueue(first, Some(w.cref));
                ws[i].blocker = first;
                i += 1;
            }
            self.watches[not_p.index()] = ws;
        }
        self.stats.propagations += propagations;
        self.stats.watcher_visits += visits;
        self.stats.blocker_hits += hits;
        confl
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance of a clause under the current assignment:
    /// the number of distinct decision levels among its literals.
    fn clause_lbd(&mut self, cref: u32) -> u32 {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut lbd = 0u32;
        let lits = &self.clauses[cref as usize].lits;
        for &l in lits {
            let lvl = self.level[l.var() as usize] as usize;
            if self.level_stamp[lvl] != stamp {
                self.level_stamp[lvl] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// LBD of the freshly minimized learnt clause (same stamp trick, but
    /// over a literal slice instead of a stored clause).
    fn lits_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.level[l.var() as usize] as usize;
            if self.level_stamp[lvl] != stamp {
                self.level_stamp[lvl] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's glue (LBD).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(confl);
            // Glue maintenance: a learnt clause participating in a conflict
            // is "used" this reduction round, and its LBD can only improve.
            if self.clauses[confl as usize].learnt {
                let lbd = self.clause_lbd(confl);
                let c = &mut self.clauses[confl as usize];
                c.used = true;
                if lbd < c.glue {
                    c.glue = lbd;
                }
            }
            // Skip the literal this clause propagated (if any) by identity,
            // not position: binary clauses enqueue their blocker literal
            // without normalizing it to position 0.
            let len = self.clauses[confl as usize].lits.len();
            for idx in 0..len {
                let q = self.clauses[confl as usize].lits[idx];
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    self.bump_var(v);
                    if self.level[v as usize] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to expand (walk the trail backwards).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.negated();
                break;
            }
            confl = self.reason[pl.var() as usize]
                .expect("non-decision literal at conflict level must have a reason");
            p = Some(pl);
        }

        // Cheap clause minimization: drop literals whose reason clause is
        // entirely covered by the remaining seen literals.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Clear seen flags.
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }

        let glue = self.lits_lbd(&minimized);

        // Compute backtrack level = max level among non-asserting literals,
        // and move such a literal to position 1 so it gets watched.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var() as usize]
                    > self.level[minimized[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var() as usize]
        };
        (minimized, bt, glue)
    }

    /// A literal is redundant in the learnt clause if it was propagated and
    /// every literal of its reason clause is already seen (self-subsumption).
    /// The reason clause's own propagated literal (`¬l`) is skipped by
    /// identity — binary reasons do not keep it at position 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        let not_l = l.negated();
        match self.reason[l.var() as usize] {
            None => false,
            Some(cref) => self.clauses[cref as usize].lits.iter().all(|&q| {
                q == not_l || self.seen[q.var() as usize] || self.level[q.var() as usize] == 0
            }),
        }
    }

    /// Backtracks to `level`, unassigning trail literals and saving each
    /// variable's polarity (phase saving: the next decision on the variable
    /// repeats this polarity, so restarts do not lose the partial model).
    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var();
                self.phase[v as usize] = !l.is_neg();
                self.assign[l.index()] = VAL_UNDEF;
                self.assign[l.negated().index()] = VAL_UNDEF;
                self.reason[v as usize] = None;
                self.order.push(v, &self.activity);
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn pick_branch_var(&mut self) -> Option<u32> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[(v * 2) as usize] == VAL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    /// A clause is locked while it is the reason for an assigned literal;
    /// locked clauses must never be deleted (conflict analysis walks
    /// `reason` crefs).
    fn is_locked(&self, cref: u32) -> bool {
        let c = &self.clauses[cref as usize];
        !c.deleted
            && !c.lits.is_empty()
            && self.reason[c.lits[0].var() as usize] == Some(cref)
            && self.lit_value(c.lits[0]) == Some(true)
    }

    /// Three-tier learnt-database reduction:
    ///
    /// * **core** (glue ≤ [`Solver::CORE_GLUE`]): kept forever,
    /// * **mid** (glue ≤ [`Solver::MID_GLUE`]): kept if it participated in
    ///   a conflict since the previous reduction, demoted otherwise,
    /// * **local**: sorted by (glue, activity) and the worse half deleted.
    ///
    /// Binary and locked (reason) clauses are never deleted. Deleted
    /// clauses become arena husks until [`Solver::collect_garbage_now`]
    /// (triggered automatically) compacts them away.
    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        let mut victims: Vec<u32> = Vec::new();
        for cref in 0..self.clauses.len() as u32 {
            let c = &self.clauses[cref as usize];
            if !c.learnt || c.deleted || c.lits.len() <= 2 || c.glue <= Self::CORE_GLUE {
                continue;
            }
            if self.is_locked(cref) {
                continue;
            }
            if c.glue <= Self::MID_GLUE && c.used {
                // Mid-tier clause that earned its keep: clear the bit and
                // give it another round.
                self.clauses[cref as usize].used = false;
                continue;
            }
            victims.push(cref);
        }
        // Worst first: highest glue, then lowest activity. f64 activities
        // are non-negative, so the bit pattern orders them totally and the
        // sort stays deterministic; cref breaks exact ties.
        victims.sort_by_key(|&cref| {
            let c = &self.clauses[cref as usize];
            (std::cmp::Reverse(c.glue), c.activity.to_bits(), cref)
        });
        for &cref in &victims[..victims.len() / 2] {
            let c = &mut self.clauses[cref as usize];
            c.deleted = true;
            c.lits = Vec::new();
            self.deleted_count += 1;
            self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
        }
        if self.deleted_count >= Self::GC_MIN_DELETED {
            self.collect_garbage();
        }
    }

    /// Forces a learnt-database reduction (plus the follow-up garbage
    /// collection if enough husks accumulated). Normally reductions run on
    /// a conflict-count schedule; this hook exists for tests and tools.
    pub fn reduce_learnts_now(&mut self) {
        self.reduce_db();
    }

    /// Compacts the clause arena: physically removes deleted clauses and
    /// remaps every clause reference in the watch lists and the reason
    /// array. A no-op when nothing is deleted. Normally triggered by
    /// [`Solver::reduce_learnts_now`]/the solve loop; public for tests.
    pub fn collect_garbage_now(&mut self) {
        self.collect_garbage();
    }

    fn collect_garbage(&mut self) {
        if self.deleted_count == 0 {
            return;
        }
        let mut remap: Vec<u32> = vec![u32::MAX; self.clauses.len()];
        let mut next = 0u32;
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                remap[i] = next;
                next += 1;
            }
        }
        self.clauses.retain(|c| !c.deleted);
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let tag = w.cref & BINARY_TAG;
                let mapped = remap[(w.cref & !BINARY_TAG) as usize];
                if mapped == u32::MAX {
                    false
                } else {
                    w.cref = mapped | tag;
                    true
                }
            });
        }
        for r in &mut self.reason {
            if let Some(cref) = r.as_mut() {
                let mapped = remap[*cref as usize];
                debug_assert_ne!(mapped, u32::MAX, "reason clause was garbage collected");
                *cref = mapped;
            }
        }
        self.deleted_count = 0;
        self.stats.gc_runs += 1;
    }

    /// Panics if any internal invariant is broken: a trail literal whose
    /// reason cref is out of range, deleted, or does not start with that
    /// literal; a watcher whose cref is out of range or (for live clauses)
    /// whose watched literal is not in the clause's first two positions; or
    /// stat counters out of sync with the database. Used by the invariant
    /// test suite after forced reductions/GC; cheap enough for debugging
    /// sessions, not meant for production hot paths.
    pub fn check_integrity(&self) {
        let deleted = self.clauses.iter().filter(|c| c.deleted).count();
        assert_eq!(deleted, self.deleted_count, "deleted_count out of sync");
        let learnt = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count();
        assert_eq!(
            learnt as u64, self.stats.learnt_clauses,
            "learnt_clauses stat out of sync"
        );
        for &l in &self.trail {
            assert_eq!(self.lit_value(l), Some(true), "trail literal not true");
            if let Some(cref) = self.reason[l.var() as usize] {
                let c = self
                    .clauses
                    .get(cref as usize)
                    .expect("reason cref out of range");
                assert!(!c.deleted, "reason clause deleted");
                // Binary clauses propagate either literal; longer clauses
                // keep the propagated literal in watch position 0.
                if c.lits.len() == 2 {
                    assert!(
                        c.lits.contains(&l),
                        "binary reason clause does not contain its literal"
                    );
                } else {
                    assert_eq!(c.lits[0], l, "reason clause does not assert its literal");
                }
            }
        }
        for (idx, ws) in self.watches.iter().enumerate() {
            for w in ws {
                let c = self
                    .clauses
                    .get((w.cref & !BINARY_TAG) as usize)
                    .expect("watcher cref out of range");
                assert_eq!(
                    w.cref & BINARY_TAG != 0,
                    !c.deleted && c.lits.len() == 2,
                    "binary tag out of sync with clause length"
                );
                if !c.deleted {
                    assert!(
                        c.lits[0].index() == idx || c.lits[1].index() == idx,
                        "watched literal not in the clause's watch positions"
                    );
                }
            }
        }
    }

    /// Records a conflict's glue in the restart-pacing windows and returns
    /// `true` if the glue trend demands an early restart.
    fn note_conflict_glue(&mut self, glue: u32, trail_len: usize) -> bool {
        self.lbd_global_sum += glue as u64;
        self.lbd_global_count += 1;
        self.trail_size_sum += trail_len as u64;
        self.trail_size_count += 1;
        // Blocking restarts: an unusually deep trail means the search is
        // closing in on a model; postpone by clearing the window.
        if self.lbd_ring.len() == Self::LBD_RING
            && (trail_len as f64) * (self.trail_size_count as f64)
                > Self::TRAIL_BLOCK_FACTOR * self.trail_size_sum as f64
        {
            self.lbd_ring.clear();
            self.lbd_ring_next = 0;
            self.lbd_ring_sum = 0;
        }
        if self.lbd_ring.len() < Self::LBD_RING {
            self.lbd_ring.push(glue);
            self.lbd_ring_sum += glue as u64;
        } else {
            self.lbd_ring_sum -= self.lbd_ring[self.lbd_ring_next] as u64;
            self.lbd_ring[self.lbd_ring_next] = glue;
            self.lbd_ring_sum += glue as u64;
            self.lbd_ring_next = (self.lbd_ring_next + 1) % Self::LBD_RING;
        }
        self.lbd_ring.len() == Self::LBD_RING
            && (self.lbd_ring_sum as f64) * (self.lbd_global_count as f64)
                > Self::GLUE_RESTART_FACTOR * (self.lbd_global_sum as f64) * (Self::LBD_RING as f64)
    }

    fn clear_lbd_ring(&mut self) {
        self.lbd_ring.clear();
        self.lbd_ring_next = 0;
        self.lbd_ring_sum = 0;
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given DIMACS-literal assumptions. The assumptions act
    /// as forced first decisions: `Unsat` means unsatisfiable *under these
    /// assumptions* (the formula itself may remain satisfiable).
    ///
    /// # Panics
    /// Panics if any assumption literal is 0 or references an unallocated
    /// variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[i32]) -> SolveResult {
        for &a in assumptions {
            assert!(a != 0, "literal 0 is invalid");
            assert!(
                a.unsigned_abs() <= self.num_vars(),
                "assumption {a} references unallocated variable"
            );
        }
        self.stats.solves += 1;
        if self.unsat {
            return SolveResult::Unsat;
        }
        if self.interrupt_fired() {
            return SolveResult::Interrupted;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let assumps: Vec<Lit> = assumptions.iter().map(|&l| Lit::from_dimacs(l)).collect();
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = luby(1) * 100;
        let mut conflicts_this_solve = 0u64;
        let mut conflicts_at_last_restart = 0u64;
        let mut ops_since_poll = 0u32;
        self.clear_lbd_ring();

        loop {
            ops_since_poll += 1;
            if ops_since_poll >= Self::INTERRUPT_POLL_OPS {
                ops_since_poll = 0;
                if self.interrupt_fired() {
                    self.cancel_until(0);
                    return SolveResult::Interrupted;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_solve += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                // A conflict while only assumption decisions are on the trail
                // means the assumptions are contradictory with the formula.
                if self.decision_level() <= assumps.len() as u32 {
                    // Learn what we can, then report Unsat-under-assumptions.
                    let (learnt, bt, glue) = self.analyze(confl);
                    self.cancel_until(bt.min(self.decision_level().saturating_sub(1)));
                    self.learn(learnt, glue);
                    // Re-establish from scratch on next call.
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt, glue) = self.analyze(confl);
                let glue_restart = self.note_conflict_glue(glue, self.trail.len());
                self.cancel_until(bt.max(assumps.len() as u32).min(self.decision_level() - 1));
                self.learn(learnt, glue);
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                let luby_restart = conflicts_this_solve >= conflicts_until_restart;
                if luby_restart
                    || (glue_restart
                        && conflicts_this_solve - conflicts_at_last_restart
                            >= Self::GLUE_RESTART_SPACING)
                {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_at_last_restart = conflicts_this_solve;
                    if luby_restart {
                        conflicts_until_restart =
                            conflicts_this_solve + luby(restart_count + 1) * 100;
                    }
                    self.clear_lbd_ring();
                    self.cancel_until(0);
                }
                if self.reduce_enabled && self.stats.conflicts >= self.next_reduce {
                    self.reduce_db();
                    self.next_reduce = self.stats.conflicts
                        + Self::REDUCE_BASE
                        + Self::REDUCE_INC * self.stats.reduces;
                }
                if let Some(budget) = self.conflict_budget {
                    if conflicts_this_solve > budget {
                        self.cancel_until(0);
                        return SolveResult::BudgetExhausted;
                    }
                }
            } else {
                // Assert pending assumptions, one decision level each.
                let dl = self.decision_level() as usize;
                if dl < assumps.len() {
                    let a = assumps[dl];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already implied: open an empty level to keep the
                            // level<->assumption correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, !phase), None);
                    }
                }
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>, glue: u32) {
        match learnt.len() {
            0 => self.unsat = true,
            1 => {
                // A unit consequence holds at level 0; enqueue it there so it
                // never appears as a reasonless non-decision literal at a
                // higher level (which would break conflict analysis).
                self.cancel_until(0);
                if self.lit_value(learnt[0]) == Some(false) {
                    self.unsat = true;
                } else if self.lit_value(learnt[0]).is_none() {
                    self.enqueue(learnt[0], None);
                }
            }
            _ => {
                let asserting = learnt[0];
                let cref = self.attach_clause(learnt, true, glue);
                self.bump_clause(cref);
                if self.lit_value(asserting).is_none() {
                    self.enqueue(asserting, Some(cref));
                }
            }
        }
    }

    /// Reads the value of a DIMACS literal from the last `Sat` model.
    ///
    /// # Panics
    /// Panics if the last solve was not `Sat` for this variable (unassigned)
    /// or the literal is invalid.
    pub fn model_value(&self, lit: i32) -> bool {
        assert!(lit != 0, "literal 0 is invalid");
        let l = Lit::from_dimacs(lit);
        self.lit_value(l)
            .expect("variable unassigned: call solve() and check Sat first")
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solver({} vars, {} clauses, {:?})",
            self.num_vars(),
            self.num_clauses(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a]);
        s.add_clause(&[-a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a));
        assert!(s.model_value(b));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        s.add_clause(&[-a]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a, -a]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn xor_chain_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable (parity).
        let mut s = Solver::new();
        let x: Vec<i32> = (0..3).map(|_| s.new_var()).collect();
        let xor_true = |s: &mut Solver, a: i32, b: i32| {
            s.add_clause(&[a, b]);
            s.add_clause(&[-a, -b]);
        };
        xor_true(&mut s, x[0], x[1]);
        xor_true(&mut s, x[1], x[2]);
        xor_true(&mut s, x[0], x[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n) is a classic hard UNSAT family.
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let var: Vec<Vec<i32>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &var {
            s.add_clause(row);
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (a, b) in var[p1].iter().zip(&var[p2]) {
                    s.add_clause(&[-a, -b]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            let mut s = pigeonhole(n + 1, n);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({}, {})", n + 1, n);
        }
    }

    #[test]
    fn pigeonhole_exact_fit_sat() {
        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_restrict_then_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[-a, -b]), SolveResult::Unsat);
        // Without assumptions the formula is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Single assumption forces the other literal.
        assert_eq!(s.solve_with_assumptions(&[-a]), SolveResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn assumptions_conflicting_with_unit() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        assert_eq!(s.solve_with_assumptions(&[-a]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v: Vec<i32> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[-v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v[1]));
        s.add_clause(&[-v[1], v[2]]);
        s.add_clause(&[-v[2], v[3]]);
        s.add_clause(&[-v[3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn add_clause_grows_variable_space() {
        let mut s = Solver::new();
        s.add_clause(&[5]);
        assert_eq!(s.num_vars(), 5);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(5));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(5, 4);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
        assert_eq!(st.solves, 1);
    }

    #[test]
    fn blocker_hits_are_recorded() {
        let mut s = pigeonhole(6, 5);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.watcher_visits > 0);
        assert!(st.blocker_hits > 0, "no blocker short-circuits at all");
        assert!(st.blocker_hits <= st.watcher_visits);
        assert!(st.blocker_hit_rate() > 0.0 && st.blocker_hit_rate() <= 1.0);
    }

    #[test]
    fn glue_histogram_fills_on_learning() {
        let mut s = pigeonhole(6, 5);
        let _ = s.solve();
        let st = s.stats();
        let total: u64 = st.glue_hist.iter().sum();
        assert!(total > 0, "no learnt clause recorded a glue");
    }

    #[test]
    fn random_3sat_small_instances() {
        // Deterministic LCG-generated instances cross-checked by brute force.
        let mut seed = 0x2026_0705u64;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for inst in 0..40 {
            let nvars = 6 + (rand() % 4) as usize; // 6..9
            let nclauses = 20 + (rand() % 20) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (rand() as usize % nvars) as i32 + 1;
                    let l = if rand() % 2 == 0 { v } else { -v };
                    cl.push(l);
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    let ok = cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for cl in &clauses {
                s.add_clause(cl);
            }
            let res = s.solve();
            assert_eq!(
                res == SolveResult::Sat,
                brute_sat,
                "instance {inst} disagreement"
            );
            if res == SolveResult::Sat {
                // Model must satisfy every clause (model_value is the value
                // of the *literal*, true literal = satisfied).
                for cl in &clauses {
                    assert!(cl.iter().any(|&l| s.model_value(l)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "literal 0")]
    fn zero_literal_rejected() {
        let mut s = Solver::new();
        s.add_clause(&[0]);
    }

    #[test]
    fn budget_exhaustion_is_not_unsat() {
        // PHP(7, 6) needs far more than 10 conflicts; the budgeted solve
        // must report BudgetExhausted, and lifting the budget must still
        // reach the true Unsat answer from the kept learnt clauses.
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::BudgetExhausted);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budget_large_enough_does_not_trigger() {
        let mut s = pigeonhole(4, 4);
        s.set_conflict_budget(Some(1_000_000));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pre_cancelled_token_interrupts_immediately() {
        let mut s = pigeonhole(7, 6);
        let token = CancelToken::new();
        token.cancel();
        s.set_interrupt(Some(token));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        // Clearing the token resumes normal solving on intact state.
        s.set_interrupt(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn deadline_token_interrupts_a_long_solve() {
        // PHP(9, 8) takes well over 50ms; the deadline must cut it short.
        let mut s = pigeonhole(9, 8);
        s.set_interrupt(Some(CancelToken::with_deadline(
            std::time::Duration::from_millis(50),
        )));
        let started = std::time::Instant::now();
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "interrupt took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn cancel_from_another_thread_interrupts() {
        let mut s = pigeonhole(9, 8);
        let token = CancelToken::new();
        s.set_interrupt(Some(token.clone()));
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            token.cancel();
        });
        assert_eq!(s.solve(), SolveResult::Interrupted);
        canceller.join().unwrap();
    }

    #[test]
    fn cancel_until_saves_phases() {
        // White-box: backtracking must record each popped variable's
        // polarity so later decisions (and restarts) replay it.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a, b]);
        s.trail_lim.push(s.trail.len());
        s.enqueue(Lit::new(0, false), None); // decide a = true
        s.trail_lim.push(s.trail.len());
        s.enqueue(Lit::new(1, true), None); // decide b = false
        s.cancel_until(0);
        assert!(s.phase[0], "positive assignment must save phase true");
        assert!(!s.phase[1], "negative assignment must save phase false");
    }

    #[test]
    fn phase_saving_makes_resolves_reproduce_the_model() {
        // Phase saving means a second solve re-decides every variable with
        // its saved polarity, reproducing the first model exactly — across
        // the restarts the first solve performed.
        let mut s = pigeonhole(5, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model1: Vec<bool> = (1..=s.num_vars() as i32)
            .map(|v| s.model_value(v))
            .collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        let model2: Vec<bool> = (1..=s.num_vars() as i32)
            .map(|v| s.model_value(v))
            .collect();
        assert_eq!(model1, model2);
    }

    #[test]
    fn reduce_never_deletes_reason_clauses() {
        // Drive a hard instance until learnt reasons sit on the trail, then
        // force a reduction mid-flight and check every reason survived.
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(500));
        let _ = s.solve(); // BudgetExhausted, state intact
        s.reduce_learnts_now();
        s.check_integrity();
        for &l in &s.trail {
            if let Some(cref) = s.reason[l.var() as usize] {
                assert!(!s.clauses[cref as usize].deleted, "reason deleted");
            }
        }
    }

    #[test]
    fn gc_remaps_and_preserves_solving() {
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(800));
        let _ = s.solve();
        let live_before = s.num_clauses();
        s.reduce_learnts_now();
        s.collect_garbage_now();
        s.check_integrity();
        assert_eq!(s.arena_len(), s.num_clauses(), "husks after explicit GC");
        assert!(s.num_clauses() <= live_before);
        // The compacted solver still reaches the right answer.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn arena_stays_bounded_on_restart_heavy_solves() {
        // Regression test for the reduce_db leak: deleted clause husks used
        // to linger in the arena (and watch lists) forever. With arena GC
        // the physical arena must track the live clause count.
        let mut s = pigeonhole(8, 7);
        s.set_conflict_budget(Some(12_000));
        let _ = s.solve();
        let st = s.stats();
        assert!(st.reduces >= 1, "workload too small to trigger a reduction");
        assert!(st.gc_runs >= 1, "reductions never compacted the arena");
        assert!(
            s.arena_len() <= s.num_clauses() + Solver::GC_MIN_DELETED,
            "arena ({}) grew past live clauses ({}) + GC slack",
            s.arena_len(),
            s.num_clauses()
        );
        s.check_integrity();
    }

    #[test]
    fn db_reduction_can_be_disabled() {
        let mut s = pigeonhole(8, 7);
        s.set_db_reduction(false);
        s.set_conflict_budget(Some(6_000));
        let _ = s.solve();
        let st = s.stats();
        assert_eq!(st.reduces, 0);
        assert_eq!(st.gc_runs, 0);
        // Every learnt clause is still in the database.
        assert_eq!(s.arena_len(), s.num_clauses());
    }

    #[test]
    fn core_glue_clauses_survive_reduction() {
        let mut s = pigeonhole(8, 7);
        s.set_conflict_budget(Some(12_000));
        let _ = s.solve();
        assert!(s.stats().reduces >= 1);
        let cores = s
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.glue <= Solver::CORE_GLUE)
            .count();
        // The instance is hard enough to have produced core-glue clauses,
        // and reductions must have kept all of them.
        assert!(cores > 0, "no core-glue clauses learnt");
    }
}
