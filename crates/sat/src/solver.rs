//! The CDCL solver core.

use std::fmt;

use lockbind_resil::CancelToken;

use crate::heap::VarHeap;
use crate::luby::luby;

/// Internal literal: `var * 2 + sign` (sign 1 = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Lit(u32);

impl Lit {
    fn new(var: u32, neg: bool) -> Lit {
        Lit(var * 2 + u32::from(neg))
    }
    fn from_dimacs(l: i32) -> Lit {
        debug_assert!(l != 0);
        Lit::new(l.unsigned_abs() - 1, l < 0)
    }
    fn var(self) -> u32 {
        self.0 >> 1
    }
    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
    fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// The conflict budget ([`Solver::set_conflict_budget`]) ran out before
    /// the solve reached an answer. **Not** a proof of unsatisfiability:
    /// the formula's status is unknown. The solver state stays valid; the
    /// learnt clauses are kept and a re-solve resumes from them.
    BudgetExhausted,
    /// The interrupt token ([`Solver::set_interrupt`]) fired mid-solve —
    /// either an explicit cancel or a deadline expiry. The formula's status
    /// is unknown; the solver state stays valid for a later re-solve.
    Interrupted,
}

/// Aggregate solver statistics, reset never (cumulative per solver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// `solve`/`solve_with_assumptions` calls completed.
    pub solves: u64,
}

/// A CDCL SAT solver. See the [crate docs](crate) for an example.
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.index()]`: clause refs in which `lit` is watched.
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Formula already proven unsatisfiable at level 0.
    unsat: bool,
    stats: SolverStats,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    interrupt: Option<CancelToken>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// How many conflicts/decisions pass between interrupt-token polls.
    /// Small enough that a deadline stops a pathological solve within
    /// milliseconds, large enough that the clock read never shows up in a
    /// profile.
    pub const INTERRUPT_POLL_OPS: u32 = 128;

    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
            max_learnts: 1000.0,
            conflict_budget: None,
            interrupt: None,
        }
    }

    /// Allocates a fresh variable and returns its positive DIMACS literal.
    pub fn new_var(&mut self) -> i32 {
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        let v = self.assign.len() as u32 - 1;
        self.order.grow_to(self.assign.len());
        self.order.push(v, &self.activity);
        v as i32 + 1
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Ensures variables up to `var` (DIMACS, 1-based) exist.
    pub fn reserve_vars(&mut self, var: u32) {
        while self.num_vars() < var {
            let _ = self.new_var();
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits each subsequent solve call to approximately `conflicts`
    /// conflicts; `None` removes the limit. When the budget runs out the
    /// solve returns [`SolveResult::BudgetExhausted`] — explicitly *not*
    /// `Unsat`, so callers can tell a proven-secure instance from one the
    /// solver merely gave up on.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Installs (or clears) a cooperative-interrupt token. The solve loop
    /// polls it every [`Solver::INTERRUPT_POLL_OPS`] conflicts/decisions
    /// and returns [`SolveResult::Interrupted`] once it fires. The token is
    /// shared: cancelling any clone interrupts the solver.
    pub fn set_interrupt(&mut self, token: Option<CancelToken>) {
        self.interrupt = token;
    }

    fn interrupt_fired(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// Adds a clause of DIMACS literals, growing the variable space if
    /// needed. May be called between solves (incremental interface).
    ///
    /// # Panics
    /// Panics if any literal is 0.
    pub fn add_clause(&mut self, lits: &[i32]) {
        assert!(lits.iter().all(|&l| l != 0), "literal 0 is invalid");
        if let Some(max) = lits.iter().map(|l| l.unsigned_abs()).max() {
            self.reserve_vars(max);
        }
        // Adding clauses is only legal at decision level 0.
        self.cancel_until(0);
        if self.unsat {
            return;
        }
        // Simplify: drop duplicate/false-at-0 literals, detect tautology.
        let mut ls: Vec<Lit> = Vec::with_capacity(lits.len());
        for &dl in lits {
            let l = Lit::from_dimacs(dl);
            match self.lit_value(l) {
                Some(true) => return, // satisfied at level 0
                Some(false) => continue,
                None => {}
            }
            if ls.contains(&l) {
                continue;
            }
            if ls.contains(&l.negated()) {
                return; // tautology
            }
            ls.push(l);
        }
        match ls.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(ls[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach_clause(ls, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].index()].push(cref);
        self.watches[lits[1].index()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|v| v != l.is_neg())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), None);
        let v = l.var() as usize;
        self.assign[v] = Some(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal Boolean constraint propagation. Returns the
    /// conflicting clause ref, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let not_p = p.negated();
            let mut ws = std::mem::take(&mut self.watches[not_p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                if self.clauses[cref as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal is at position 1.
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == not_p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], not_p);
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[cref as usize].lits.swap(1, k);
                        let new_watch = self.clauses[cref as usize].lits[1];
                        self.watches[new_watch.index()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    // Conflict: restore remaining watches and bail out.
                    self.watches[not_p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[not_p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    self.bump_var(v);
                    if self.level[v as usize] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to expand (walk the trail backwards).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.negated();
                break;
            }
            confl = self.reason[pl.var() as usize]
                .expect("non-decision literal at conflict level must have a reason");
            p = Some(pl);
        }

        // Cheap clause minimization: drop literals whose reason clause is
        // entirely covered by the remaining seen literals.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Clear seen flags.
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }

        // Compute backtrack level = max level among non-asserting literals,
        // and move such a literal to position 1 so it gets watched.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var() as usize]
                    > self.level[minimized[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var() as usize]
        };
        (minimized, bt)
    }

    /// A literal is redundant in the learnt clause if it was propagated and
    /// every literal of its reason clause is already seen (self-subsumption).
    fn literal_redundant(&self, l: Lit) -> bool {
        match self.reason[l.var() as usize] {
            None => false,
            Some(cref) => self.clauses[cref as usize].lits[1..]
                .iter()
                .all(|&q| self.seen[q.var() as usize] || self.level[q.var() as usize] == 0),
        }
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var();
                self.phase[v as usize] = !l.is_neg();
                self.assign[v as usize] = None;
                self.reason[v as usize] = None;
                self.order.push(v, &self.activity);
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn pick_branch_var(&mut self) -> Option<u32> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v as usize].is_none() {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Collect learnt, unlocked clause refs sorted by activity ascending.
        let locked: Vec<bool> = self
            .clauses
            .iter()
            .enumerate()
            .map(|(i, c)| {
                !c.deleted
                    && !c.lits.is_empty()
                    && self.reason[c.lits[0].var() as usize] == Some(i as u32)
                    && self.lit_value(c.lits[0]) == Some(true)
            })
            .collect();
        let mut learnts: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && !locked[i as usize] && c.lits.len() > 2
            })
            .collect();
        learnts.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &cref in &learnts[..learnts.len() / 2] {
            self.clauses[cref as usize].deleted = true;
            self.clauses[cref as usize].lits.clear();
            self.clauses[cref as usize].lits.shrink_to_fit();
            self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
        }
        // Deleted clauses are lazily dropped from watch lists in propagate().
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given DIMACS-literal assumptions. The assumptions act
    /// as forced first decisions: `Unsat` means unsatisfiable *under these
    /// assumptions* (the formula itself may remain satisfiable).
    ///
    /// # Panics
    /// Panics if any assumption literal is 0 or references an unallocated
    /// variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[i32]) -> SolveResult {
        for &a in assumptions {
            assert!(a != 0, "literal 0 is invalid");
            assert!(
                a.unsigned_abs() <= self.num_vars(),
                "assumption {a} references unallocated variable"
            );
        }
        self.stats.solves += 1;
        if self.unsat {
            return SolveResult::Unsat;
        }
        if self.interrupt_fired() {
            return SolveResult::Interrupted;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let assumps: Vec<Lit> = assumptions.iter().map(|&l| Lit::from_dimacs(l)).collect();
        self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = luby(1) * 100;
        let mut conflicts_this_solve = 0u64;
        let mut ops_since_poll = 0u32;

        loop {
            ops_since_poll += 1;
            if ops_since_poll >= Self::INTERRUPT_POLL_OPS {
                ops_since_poll = 0;
                if self.interrupt_fired() {
                    self.cancel_until(0);
                    return SolveResult::Interrupted;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_solve += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                // A conflict while only assumption decisions are on the trail
                // means the assumptions are contradictory with the formula.
                if self.decision_level() <= assumps.len() as u32 {
                    // Learn what we can, then report Unsat-under-assumptions.
                    let (learnt, bt) = self.analyze(confl);
                    self.cancel_until(bt.min(self.decision_level().saturating_sub(1)));
                    self.learn(learnt);
                    // Re-establish from scratch on next call.
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt.max(assumps.len() as u32).min(self.decision_level() - 1));
                self.learn(learnt);
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if conflicts_this_solve >= conflicts_until_restart {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart = conflicts_this_solve + luby(restart_count + 1) * 100;
                    self.cancel_until(0);
                }
                if self.stats.learnt_clauses as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                if let Some(budget) = self.conflict_budget {
                    if conflicts_this_solve > budget {
                        self.cancel_until(0);
                        return SolveResult::BudgetExhausted;
                    }
                }
            } else {
                // Assert pending assumptions, one decision level each.
                let dl = self.decision_level() as usize;
                if dl < assumps.len() {
                    let a = assumps[dl];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already implied: open an empty level to keep the
                            // level<->assumption correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, !phase), None);
                    }
                }
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        match learnt.len() {
            0 => self.unsat = true,
            1 => {
                // A unit consequence holds at level 0; enqueue it there so it
                // never appears as a reasonless non-decision literal at a
                // higher level (which would break conflict analysis).
                self.cancel_until(0);
                if self.lit_value(learnt[0]) == Some(false) {
                    self.unsat = true;
                } else if self.lit_value(learnt[0]).is_none() {
                    self.enqueue(learnt[0], None);
                }
            }
            _ => {
                let asserting = learnt[0];
                let cref = self.attach_clause(learnt, true);
                self.bump_clause(cref);
                if self.lit_value(asserting).is_none() {
                    self.enqueue(asserting, Some(cref));
                }
            }
        }
    }

    /// Reads the value of a DIMACS literal from the last `Sat` model.
    ///
    /// # Panics
    /// Panics if the last solve was not `Sat` for this variable (unassigned)
    /// or the literal is invalid.
    pub fn model_value(&self, lit: i32) -> bool {
        assert!(lit != 0, "literal 0 is invalid");
        let l = Lit::from_dimacs(lit);
        self.lit_value(l)
            .expect("variable unassigned: call solve() and check Sat first")
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solver({} vars, {} clauses, {:?})",
            self.num_vars(),
            self.clauses.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a]);
        s.add_clause(&[-a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a));
        assert!(s.model_value(b));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        s.add_clause(&[-a]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a, -a]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn xor_chain_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable (parity).
        let mut s = Solver::new();
        let x: Vec<i32> = (0..3).map(|_| s.new_var()).collect();
        let xor_true = |s: &mut Solver, a: i32, b: i32| {
            s.add_clause(&[a, b]);
            s.add_clause(&[-a, -b]);
        };
        xor_true(&mut s, x[0], x[1]);
        xor_true(&mut s, x[1], x[2]);
        xor_true(&mut s, x[0], x[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n) is a classic hard UNSAT family.
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let var: Vec<Vec<i32>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &var {
            s.add_clause(row);
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (a, b) in var[p1].iter().zip(&var[p2]) {
                    s.add_clause(&[-a, -b]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            let mut s = pigeonhole(n + 1, n);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({}, {})", n + 1, n);
        }
    }

    #[test]
    fn pigeonhole_exact_fit_sat() {
        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_restrict_then_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[-a, -b]), SolveResult::Unsat);
        // Without assumptions the formula is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Single assumption forces the other literal.
        assert_eq!(s.solve_with_assumptions(&[-a]), SolveResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn assumptions_conflicting_with_unit() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        assert_eq!(s.solve_with_assumptions(&[-a]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v: Vec<i32> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[-v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v[1]));
        s.add_clause(&[-v[1], v[2]]);
        s.add_clause(&[-v[2], v[3]]);
        s.add_clause(&[-v[3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn add_clause_grows_variable_space() {
        let mut s = Solver::new();
        s.add_clause(&[5]);
        assert_eq!(s.num_vars(), 5);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(5));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(5, 4);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
        assert_eq!(st.solves, 1);
    }

    #[test]
    fn random_3sat_small_instances() {
        // Deterministic LCG-generated instances cross-checked by brute force.
        let mut seed = 0x2026_0705u64;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for inst in 0..40 {
            let nvars = 6 + (rand() % 4) as usize; // 6..9
            let nclauses = 20 + (rand() % 20) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (rand() as usize % nvars) as i32 + 1;
                    let l = if rand() % 2 == 0 { v } else { -v };
                    cl.push(l);
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    let ok = cl.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for cl in &clauses {
                s.add_clause(cl);
            }
            let res = s.solve();
            assert_eq!(
                res == SolveResult::Sat,
                brute_sat,
                "instance {inst} disagreement"
            );
            if res == SolveResult::Sat {
                // Model must satisfy every clause (model_value is the value
                // of the *literal*, true literal = satisfied).
                for cl in &clauses {
                    assert!(cl.iter().any(|&l| s.model_value(l)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "literal 0")]
    fn zero_literal_rejected() {
        let mut s = Solver::new();
        s.add_clause(&[0]);
    }

    #[test]
    fn budget_exhaustion_is_not_unsat() {
        // PHP(7, 6) needs far more than 10 conflicts; the budgeted solve
        // must report BudgetExhausted, and lifting the budget must still
        // reach the true Unsat answer from the kept learnt clauses.
        let mut s = pigeonhole(7, 6);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::BudgetExhausted);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budget_large_enough_does_not_trigger() {
        let mut s = pigeonhole(4, 4);
        s.set_conflict_budget(Some(1_000_000));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pre_cancelled_token_interrupts_immediately() {
        let mut s = pigeonhole(7, 6);
        let token = CancelToken::new();
        token.cancel();
        s.set_interrupt(Some(token));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        // Clearing the token resumes normal solving on intact state.
        s.set_interrupt(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn deadline_token_interrupts_a_long_solve() {
        // PHP(9, 8) takes well over 50ms; the deadline must cut it short.
        let mut s = pigeonhole(9, 8);
        s.set_interrupt(Some(CancelToken::with_deadline(
            std::time::Duration::from_millis(50),
        )));
        let started = std::time::Instant::now();
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "interrupt took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn cancel_from_another_thread_interrupts() {
        let mut s = pigeonhole(9, 8);
        let token = CancelToken::new();
        s.set_interrupt(Some(token.clone()));
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            token.cancel();
        });
        assert_eq!(s.solve(), SolveResult::Interrupted);
        canceller.join().unwrap();
    }
}
