//! A CDCL SAT solver built from scratch for the oracle-guided SAT attack.
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis,
//! VSIDS variable ordering with phase saving, Luby restarts, activity-based
//! learnt-clause database reduction, incremental clause addition between
//! solves, and solving under assumptions — everything the SAT attack's
//! DIP loop needs (add distinguishing-input constraints, re-solve).
//!
//! Literals use the DIMACS convention (`i32`, negative = negated, no 0),
//! matching [`lockbind-netlist`]'s Tseitin encoder.
//!
//! # Example
//!
//! ```
//! use lockbind_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a, b]);
//! s.add_clause(&[-a, b]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.model_value(b));
//!
//! // Incremental: force b false and re-solve.
//! s.add_clause(&[-b]);
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```
//!
//! [`lockbind-netlist`]: ../lockbind_netlist/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
mod heap;
mod luby;
mod solver;

pub use luby::luby;
pub use solver::{SolveResult, Solver, SolverStats};
