//! Gate-level netlist substrate for logic locking.
//!
//! Logic locking operates on combinational modules at the gate level; this
//! crate provides everything the locking and attack crates need:
//!
//! * [`Netlist`] — an append-only (hence acyclic) gate graph with primary
//!   inputs, key inputs, and outputs,
//! * [`builders`] — structural arithmetic: ripple-carry adders, array
//!   multipliers, comparators, muxes, and ready-made functional-unit modules
//!   ([`builders::adder_fu`], [`builders::multiplier_fu`], ...),
//! * 64-way bit-parallel simulation ([`Netlist::eval`] /
//!   [`Netlist::eval_u64`]),
//! * [`cnf`] — Tseitin encoding into DIMACS-style CNF for the SAT attack.
//!
//! # Example: build and simulate a 4-bit adder FU
//!
//! ```
//! use lockbind_netlist::builders::adder_fu;
//!
//! let nl = adder_fu(4);
//! assert_eq!(nl.num_inputs(), 8);
//! assert_eq!(nl.num_outputs(), 4);
//! // 9 + 8 = 17 -> 1 (mod 16)
//! let out = nl.eval_words(&[9, 8], 4, &[]);
//! assert_eq!(out, vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arch;
pub mod builders;
pub mod cnf;
pub mod dot;
mod error;
mod netlist;
pub mod opt;

pub use error::NetlistError;
pub use netlist::{Gate, Netlist, Signal};
