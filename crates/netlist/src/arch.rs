//! Alternative datapath architectures for the FU modules.
//!
//! Locking overhead and SAT-attack hardness both depend on the *structure*
//! of the locked module, not only its function. These builders provide
//! faster/wider-industry-standard implementations functionally equivalent
//! to the ripple-carry/array versions in [`crate::builders`], so experiments
//! can check that the paper's conclusions are architecture-independent.

use crate::builders::{full_adder, Bus};
use crate::{Netlist, Signal};

/// Carry-lookahead adder (block size = full width, textbook generate/
/// propagate network); wraps like the ripple-carry version.
///
/// # Panics
/// Panics if the buses differ in width or are empty.
pub fn carry_lookahead_adder(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    assert!(!a.is_empty(), "adder width must be positive");
    let w = a.len();
    // Generate and propagate per bit.
    let g: Vec<Signal> = (0..w).map(|i| nl.and(a[i], b[i])).collect();
    let p: Vec<Signal> = (0..w).map(|i| nl.xor(a[i], b[i])).collect();
    // Carries: c[0] = 0; c[i+1] = g[i] | (p[i] & c[i]) — expanded as a
    // lookahead network (prefix AND-OR chains).
    let mut carries: Vec<Signal> = Vec::with_capacity(w + 1);
    carries.push(nl.lit_false());
    for i in 0..w {
        // c[i+1] = g[i] | p[i]&g[i-1] | p[i]&p[i-1]&g[i-2] | ...
        let mut term_chain: Option<Signal> = None;
        let mut prefix: Option<Signal> = None; // p[i] & p[i-1] & ... (running)
        for j in (0..=i).rev() {
            let term = match prefix {
                None => g[j],
                Some(pre) => nl.and(pre, g[j]),
            };
            term_chain = Some(match term_chain {
                None => term,
                Some(acc) => nl.or(acc, term),
            });
            prefix = Some(match prefix {
                None => p[j],
                Some(pre) => nl.and(pre, p[j]),
            });
        }
        carries.push(term_chain.expect("i+1 terms"));
    }
    (0..w).map(|i| nl.xor(p[i], carries[i])).collect()
}

/// Wallace-tree multiplier: partial products reduced with carry-save
/// adders, final carry-propagate stage; returns the low `width` bits
/// (wrapping), like [`crate::builders::array_multiplier`].
pub fn wallace_multiplier(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(
        a.len(),
        b.len(),
        "multiplier operands must have equal width"
    );
    assert!(!a.is_empty(), "multiplier width must be positive");
    let w = a.len();
    // Column-wise partial-product bits (truncated to w columns).
    let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); w];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            if i + j < w {
                columns[i + j].push(nl.and(aj, bi));
            }
        }
    }
    // Carry-save reduction: repeatedly compress columns of 3 bits into
    // sum+carry until every column has at most 2 bits.
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<Signal>> = vec![Vec::new(); w];
        for (c, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, carry) = {
                    let cin = col[i + 2];
                    full_adder(nl, col[i], col[i + 1], cin)
                };
                next[c].push(s);
                if c + 1 < w {
                    next[c + 1].push(carry);
                }
                i += 3;
            }
            if col.len() - i == 2 {
                // Half adder.
                let s = nl.xor(col[i], col[i + 1]);
                let carry = nl.and(col[i], col[i + 1]);
                next[c].push(s);
                if c + 1 < w {
                    next[c + 1].push(carry);
                }
            } else if col.len() - i == 1 {
                next[c].push(col[i]);
            }
        }
        columns = next;
    }
    // Final carry-propagate addition over the two remaining rows.
    let zero = nl.lit_false();
    let row0: Vec<Signal> = columns
        .iter()
        .map(|col| col.first().copied().unwrap_or(zero))
        .collect();
    let row1: Vec<Signal> = columns
        .iter()
        .map(|col| col.get(1).copied().unwrap_or(zero))
        .collect();
    crate::builders::ripple_carry_adder(nl, &row0, &row1)
}

/// A `width`-bit carry-lookahead adder FU (drop-in alternative to
/// [`crate::builders::adder_fu`]).
pub fn cla_adder_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("cla_adder{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let sum = carry_lookahead_adder(&mut nl, &a, &b);
    for s in sum {
        nl.mark_output(s);
    }
    nl
}

/// A `width`-bit Wallace-tree multiplier FU (drop-in alternative to
/// [`crate::builders::multiplier_fu`]).
pub fn wallace_multiplier_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("wallace_mul{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let prod = wallace_multiplier(&mut nl, &a, &b);
    for s in prod {
        nl.mark_output(s);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{adder_fu, multiplier_fu};

    #[test]
    fn cla_matches_ripple_exhaustive_4bit() {
        let cla = cla_adder_fu(4);
        let rc = adder_fu(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    cla.eval_words(&[a, b], 4, &[]),
                    rc.eval_words(&[a, b], 4, &[]),
                    "({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn wallace_matches_array_exhaustive_4bit() {
        let wal = wallace_multiplier_fu(4);
        let arr = multiplier_fu(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    wal.eval_words(&[a, b], 4, &[]),
                    arr.eval_words(&[a, b], 4, &[]),
                    "({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn cla_matches_ripple_random_8bit() {
        let cla = cla_adder_fu(8);
        let mut x = 0xACE1u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 5) & 0xFF;
            let b = (x >> 29) & 0xFF;
            assert_eq!(cla.eval_words(&[a, b], 8, &[]), vec![(a + b) & 0xFF]);
        }
    }

    #[test]
    fn wallace_matches_array_random_8bit() {
        let wal = wallace_multiplier_fu(8);
        let mut x = 0xBEE5u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 5) & 0xFF;
            let b = (x >> 29) & 0xFF;
            assert_eq!(wal.eval_words(&[a, b], 8, &[]), vec![(a * b) & 0xFF]);
        }
    }

    #[test]
    fn architectures_have_distinct_structure() {
        // Same function, different gate graph: that is the point.
        let cla = cla_adder_fu(8);
        let rc = adder_fu(8);
        assert_ne!(cla.gate_count(), rc.gate_count());
        assert!(cla.gate_count() > rc.gate_count(), "lookahead costs gates");
    }
}
