//! Structural analyses over netlists: fan-in/fan-out cones, per-net key
//! dependency supports, three-valued (0/1/X) evaluation, and topological
//! signal-probability estimation.
//!
//! These are the traversal primitives behind the `lockbind-check` LB07xx
//! audit passes, exposed here because they are generally useful (attack
//! prototyping, visualisation) and because [`Signal`] indices can only be
//! manufactured inside this crate. Everything is a single forward or
//! backward sweep over the append-only gate array, so all functions are
//! `O(gates × key-words)` or better and allocation-light.

use crate::netlist::{Gate, Netlist, Signal};

/// All key-input nets of `nl`, as `(key_index, signal)` pairs sorted by
/// key index. A well-formed netlist declares each key index exactly once;
/// duplicates are returned as-is (the checker flags them separately).
pub fn key_signals(nl: &Netlist) -> Vec<(usize, Signal)> {
    let mut keys: Vec<(usize, Signal)> = nl
        .iter_gates()
        .filter_map(|(s, g)| match g {
            Gate::Key(k) => Some((k, s)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Marks every net reachable *from* any seed by following gate fan-out
/// (the transitive set of nets whose value can be influenced by a seed).
/// Seeds themselves are marked. Returns one flag per net.
pub fn fanout_cone(nl: &Netlist, seeds: &[Signal]) -> Vec<bool> {
    let mut mark = vec![false; nl.num_nodes()];
    for s in seeds {
        mark[s.index()] = true;
    }
    for (s, g) in nl.iter_gates() {
        if !mark[s.index()] && g.operands().any(|op| mark[op.index()]) {
            mark[s.index()] = true;
        }
    }
    mark
}

/// Marks every net any seed transitively reads (the input cone). Seeds
/// themselves are marked. Returns one flag per net.
pub fn fanin_cone(nl: &Netlist, seeds: &[Signal]) -> Vec<bool> {
    let mut mark = vec![false; nl.num_nodes()];
    for s in seeds {
        mark[s.index()] = true;
    }
    // Gates only reference earlier nets, so one reverse sweep suffices.
    for i in (0..nl.num_nodes()).rev() {
        if mark[i] {
            for op in nl.gate(Signal(i as u32)).operands() {
                mark[op.index()] = true;
            }
        }
    }
    mark
}

/// Per-net key-dependency analysis: for every net, the exact set of key
/// bits in its structural fan-in (a bitset), plus whether any primary
/// input is in its fan-in. Computed in one forward pass.
#[derive(Debug, Clone)]
pub struct KeyDependence {
    words: usize,
    num_keys: usize,
    support: Vec<u64>,
    depends_on_input: Vec<bool>,
}

impl KeyDependence {
    /// Runs the forward dependency sweep over `nl`.
    pub fn compute(nl: &Netlist) -> Self {
        let num_keys = nl.num_keys();
        let words = num_keys.div_ceil(64).max(1);
        let n = nl.num_nodes();
        let mut support = vec![0u64; n * words];
        let mut depends_on_input = vec![false; n];
        for (s, g) in nl.iter_gates() {
            let i = s.index();
            match g {
                Gate::False => {}
                Gate::Input(_) => depends_on_input[i] = true,
                Gate::Key(k) => {
                    if k < num_keys {
                        support[i * words + k / 64] |= 1u64 << (k % 64);
                    }
                }
                _ => {
                    for op in g.operands() {
                        let o = op.index();
                        depends_on_input[i] |= depends_on_input[o];
                        for w in 0..words {
                            support[i * words + w] |= support[o * words + w];
                        }
                    }
                }
            }
        }
        KeyDependence {
            words,
            num_keys,
            support,
            depends_on_input,
        }
    }

    /// The number of key bits the netlist declares.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// The key-support bitset of `s` (little-endian 64-bit words).
    pub fn support(&self, s: Signal) -> &[u64] {
        &self.support[s.index() * self.words..(s.index() + 1) * self.words]
    }

    /// How many distinct key bits are in the fan-in of `s`.
    pub fn support_count(&self, s: Signal) -> u32 {
        self.support(s).iter().map(|w| w.count_ones()).sum()
    }

    /// Whether key bit `k` is in the fan-in of `s`.
    pub fn depends_on_key(&self, s: Signal, k: usize) -> bool {
        k < self.num_keys && self.support(s)[k / 64] >> (k % 64) & 1 == 1
    }

    /// If the fan-in of `s` contains exactly one key bit, returns it.
    pub fn sole_key(&self, s: Signal) -> Option<usize> {
        if self.support_count(s) != 1 {
            return None;
        }
        let ws = self.support(s);
        let w = ws.iter().position(|&x| x != 0)?;
        Some(w * 64 + ws[w].trailing_zeros() as usize)
    }

    /// Whether any primary input is in the fan-in of `s`.
    pub fn depends_on_input(&self, s: Signal) -> bool {
        self.depends_on_input[s.index()]
    }

    /// The key bits in the fan-in of `s`, ascending.
    pub fn support_keys(&self, s: Signal) -> Vec<usize> {
        (0..self.num_keys)
            .filter(|&k| self.depends_on_key(s, k))
            .collect()
    }
}

/// A three-valued logic value: known 0, known 1, or unknown (X).
///
/// The lattice is the standard ternary extension of Boolean logic
/// (Kleene strong logic): X absorbs unless a controlling value decides
/// the gate (`0 AND X = 0`, `1 OR X = 1`, `X XOR anything = X`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tv {
    /// Known logic 0.
    Zero,
    /// Known logic 1.
    One,
    /// Unknown.
    X,
}

impl Tv {
    /// Lifts a Boolean into the lattice.
    pub fn from_bool(b: bool) -> Tv {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }

    /// `Some(bool)` when the value is known, `None` for X.
    pub fn known(self) -> Option<bool> {
        match self {
            Tv::Zero => Some(false),
            Tv::One => Some(true),
            Tv::X => None,
        }
    }

    fn and(self, o: Tv) -> Tv {
        match (self, o) {
            (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
            (Tv::One, Tv::One) => Tv::One,
            _ => Tv::X,
        }
    }

    fn or(self, o: Tv) -> Tv {
        match (self, o) {
            (Tv::One, _) | (_, Tv::One) => Tv::One,
            (Tv::Zero, Tv::Zero) => Tv::Zero,
            _ => Tv::X,
        }
    }

    fn xor(self, o: Tv) -> Tv {
        match (self.known(), o.known()) {
            (Some(a), Some(b)) => Tv::from_bool(a ^ b),
            _ => Tv::X,
        }
    }

    fn not(self) -> Tv {
        match self {
            Tv::Zero => Tv::One,
            Tv::One => Tv::Zero,
            Tv::X => Tv::X,
        }
    }
}

/// Evaluates every net of `nl` under three-valued input/key assignments.
/// `inputs` and `keys` must match `num_inputs()` / `num_keys()`. Returns
/// one [`Tv`] per net, in net order.
pub fn eval_tv(nl: &Netlist, inputs: &[Tv], keys: &[Tv]) -> Vec<Tv> {
    assert_eq!(inputs.len(), nl.num_inputs(), "input arity mismatch");
    assert_eq!(keys.len(), nl.num_keys(), "key arity mismatch");
    let mut vals = vec![Tv::X; nl.num_nodes()];
    for (s, g) in nl.iter_gates() {
        let v = |sig: Signal| vals[sig.index()];
        vals[s.index()] = match g {
            Gate::False => Tv::Zero,
            Gate::Input(i) => inputs[i],
            Gate::Key(k) => keys[k],
            Gate::And(a, b) => v(a).and(v(b)),
            Gate::Or(a, b) => v(a).or(v(b)),
            Gate::Xor(a, b) => v(a).xor(v(b)),
            Gate::Not(a) => v(a).not(),
        };
    }
    vals
}

/// ProbLock-style signal-probability estimation: every primary and key
/// input is assumed an independent fair coin and probabilities propagate
/// topologically (`AND: pq`, `OR: p+q-pq`, `XOR: p+q-2pq`, `NOT: 1-p`).
///
/// One reconvergence pattern is handled exactly: the structural 2:1 mux
/// `or(and(s, t), and(not(s), f))` emitted by [`crate::Netlist::mux`],
/// whose two legs share the select and are never 1 together, gets
/// `p = p(s)·p(t) + (1-p(s))·p(f)`. Without this, the legs'
/// anti-correlation is lost and mux trees (permutation networks) drift
/// away from 0.5, drowning real skew. Other reconvergent fan-out still
/// makes this an estimate — but point-function comparators stand out as
/// extreme skew regardless. Returns one probability-of-1 per net.
pub fn signal_probabilities(nl: &Netlist) -> Vec<f64> {
    let mut p = vec![0.0f64; nl.num_nodes()];
    for (s, g) in nl.iter_gates() {
        let v = |sig: Signal| p[sig.index()];
        p[s.index()] = match g {
            Gate::False => 0.0,
            Gate::Input(_) | Gate::Key(_) => 0.5,
            Gate::And(a, b) => v(a) * v(b),
            Gate::Or(a, b) => match mux_legs(nl, a, b) {
                Some((sel, t, f)) => v(sel) * v(t) + (1.0 - v(sel)) * v(f),
                None => v(a) + v(b) - v(a) * v(b),
            },
            Gate::Xor(a, b) => v(a) + v(b) - 2.0 * v(a) * v(b),
            Gate::Not(a) => 1.0 - v(a),
        };
    }
    p
}

/// Recognizes the structural mux `or(and(sel, t), and(not(sel), f))` (in
/// either leg order) and returns `(sel, t, f)`.
fn mux_legs(nl: &Netlist, a: Signal, b: Signal) -> Option<(Signal, Signal, Signal)> {
    let (Gate::And(a0, a1), Gate::And(b0, b1)) = (nl.gate(a), nl.gate(b)) else {
        return None;
    };
    // One leg's first operand must be the inverse of the other's.
    for (sel, t, nsel, f) in [
        (a0, a1, b0, b1),
        (a0, a1, b1, b0),
        (a1, a0, b0, b1),
        (a1, a0, b1, b0),
    ] {
        if nl.gate(nsel) == Gate::Not(sel) {
            return Some((sel, t, f));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked_toy() -> Netlist {
        // out = xor(and(a, b), k0); k1 is dangling.
        let mut nl = Netlist::new("toy");
        let a = nl.add_input();
        let b = nl.add_input();
        let k0 = nl.add_key();
        let _k1 = nl.add_key();
        let g = nl.and(a, b);
        let out = nl.xor(g, k0);
        nl.mark_output(out);
        nl
    }

    #[test]
    fn key_dependence_tracks_supports() {
        let nl = locked_toy();
        let dep = KeyDependence::compute(&nl);
        let out = nl.outputs()[0];
        assert_eq!(dep.support_keys(out), vec![0]);
        assert_eq!(dep.sole_key(out), Some(0));
        assert!(dep.depends_on_input(out));
        let keys = key_signals(&nl);
        assert_eq!(keys.len(), 2);
        assert_eq!(dep.support_count(keys[1].1), 1);
        assert!(!dep.depends_on_input(keys[1].1));
    }

    #[test]
    fn cones_are_transitive() {
        let nl = locked_toy();
        let keys = key_signals(&nl);
        let cone = fanout_cone(&nl, &[keys[0].1]);
        let out = nl.outputs()[0];
        assert!(cone[out.index()]);
        let dangling = fanout_cone(&nl, &[keys[1].1]);
        assert!(!dangling[out.index()]);
        let fi = fanin_cone(&nl, &[out]);
        assert!(fi[keys[0].1.index()] && !fi[keys[1].1.index()]);
    }

    #[test]
    fn tv_eval_matches_kleene_lattice() {
        let nl = locked_toy();
        let out = nl.outputs()[0];
        // a=0 controls the AND; k0 known => output known.
        let vals = eval_tv(&nl, &[Tv::Zero, Tv::X], &[Tv::One, Tv::X]);
        assert_eq!(vals[out.index()], Tv::One);
        // all-X leaves the output unknown.
        let vals = eval_tv(&nl, &[Tv::X, Tv::X], &[Tv::X, Tv::X]);
        assert_eq!(vals[out.index()], Tv::X);
    }

    #[test]
    fn probabilities_propagate_topologically() {
        let nl = locked_toy();
        let p = signal_probabilities(&nl);
        let out = nl.outputs()[0];
        // and(a,b) = 1/4; xor with fair key = 1/2.
        assert!((p[out.index()] - 0.5).abs() < 1e-12);
        let keys = key_signals(&nl);
        assert!((p[keys[0].1.index()] - 0.5).abs() < 1e-12);
    }
}
