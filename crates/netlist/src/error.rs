use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// An evaluation was given the wrong number of primary-input values.
    InputArityMismatch {
        /// Inputs the netlist declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// An evaluation was given the wrong number of key-input values.
    KeyArityMismatch {
        /// Key bits the netlist declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Word-level evaluation was asked for a width that does not divide the
    /// input count evenly.
    WordWidthMismatch {
        /// Total primary inputs.
        inputs: usize,
        /// Requested word width.
        width: u32,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InputArityMismatch { expected, got } => {
                write!(
                    f,
                    "netlist has {expected} inputs but {got} values were supplied"
                )
            }
            NetlistError::KeyArityMismatch { expected, got } => {
                write!(
                    f,
                    "netlist has {expected} key bits but {got} values were supplied"
                )
            }
            NetlistError::WordWidthMismatch { inputs, width } => {
                write!(
                    f,
                    "{inputs} inputs cannot be grouped into {width}-bit words"
                )
            }
        }
    }
}

impl Error for NetlistError {}
