//! Graphviz DOT export for netlists (debuggability aid).

use std::fmt::Write as _;

use crate::{Gate, Netlist};

/// Renders the netlist as a Graphviz `digraph`. Inputs are boxes, keys are
/// red boxes, outputs are doubled circles, gates are labelled ellipses.
///
/// # Example
/// ```
/// use lockbind_netlist::{Netlist, dot::to_dot};
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_input();
/// let k = nl.add_key();
/// let x = nl.xor(a, k);
/// nl.mark_output(x);
/// let dot = to_dot(&nl);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("xor"));
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (sig, gate) in netlist.iter_gates() {
        let id = sig.index();
        match gate {
            Gate::False => {
                let _ = writeln!(out, "  n{id} [label=\"0\", shape=plaintext];");
            }
            Gate::Input(i) => {
                let _ = writeln!(out, "  n{id} [label=\"in{i}\", shape=box];");
            }
            Gate::Key(i) => {
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"key{i}\", shape=box, color=red, fontcolor=red];"
                );
            }
            Gate::And(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"and\"];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Or(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"or\"];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Xor(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"xor\"];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Not(a) => {
                let _ = writeln!(out, "  n{id} [label=\"not\"];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
            }
        }
    }
    for (i, s) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  out{i} [label=\"out{i}\", shape=doublecircle];");
        let _ = writeln!(out, "  n{} -> out{i};", s.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::adder_fu;

    #[test]
    fn dot_contains_all_nodes_and_outputs() {
        let nl = adder_fu(2);
        let dot = to_dot(&nl);
        assert!(dot.contains("in0"));
        assert!(dot.contains("out1"));
        assert!(dot.contains("xor"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn keys_are_highlighted() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input();
        let k = nl.add_key();
        let x = nl.and(a, k);
        nl.mark_output(x);
        assert!(to_dot(&nl).contains("color=red"));
    }
}
