//! Graphviz DOT export for netlists (debuggability aid).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Gate, Netlist};

/// Renders the netlist as a Graphviz `digraph`. Inputs are boxes, keys are
/// red boxes, outputs are doubled circles, gates are labelled ellipses.
///
/// # Example
/// ```
/// use lockbind_netlist::{Netlist, dot::to_dot};
/// let mut nl = Netlist::new("demo");
/// let a = nl.add_input();
/// let k = nl.add_key();
/// let x = nl.xor(a, k);
/// nl.mark_output(x);
/// let dot = to_dot(&nl);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("xor"));
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    render(netlist, &BTreeMap::new())
}

/// Extra per-net decoration for [`to_dot_annotated`]: a Graphviz fill
/// color plus a tooltip (typically the owning LB07xx audit finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAnnotation {
    /// Graphviz color name or `#rrggbb` used as the node's fill.
    pub color: String,
    /// Tooltip text, e.g. `"LB0704 isolated key path (key 3)"`.
    pub tooltip: String,
}

/// Like [`to_dot`], but nets present in `annotations` (keyed by net
/// index) are filled with the annotation's color and carry its tooltip —
/// the audit passes use this to paint key cones by owning finding.
pub fn to_dot_annotated(
    netlist: &Netlist,
    annotations: &BTreeMap<usize, NodeAnnotation>,
) -> String {
    render(netlist, annotations)
}

fn render(netlist: &Netlist, annotations: &BTreeMap<usize, NodeAnnotation>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (sig, gate) in netlist.iter_gates() {
        let id = sig.index();
        let extra = match annotations.get(&id) {
            Some(a) => format!(
                ", style=filled, fillcolor=\"{}\", tooltip=\"{}\"",
                a.color, a.tooltip
            ),
            None => String::new(),
        };
        match gate {
            Gate::False => {
                let _ = writeln!(out, "  n{id} [label=\"0\", shape=plaintext{extra}];");
            }
            Gate::Input(i) => {
                let _ = writeln!(out, "  n{id} [label=\"in{i}\", shape=box{extra}];");
            }
            Gate::Key(i) => {
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"key{i}\", shape=box, color=red, fontcolor=red{extra}];"
                );
            }
            Gate::And(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"and\"{extra}];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Or(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"or\"{extra}];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Xor(a, b) => {
                let _ = writeln!(out, "  n{id} [label=\"xor\"{extra}];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
                let _ = writeln!(out, "  n{} -> n{id};", b.index());
            }
            Gate::Not(a) => {
                let _ = writeln!(out, "  n{id} [label=\"not\"{extra}];");
                let _ = writeln!(out, "  n{} -> n{id};", a.index());
            }
        }
    }
    for (i, s) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  out{i} [label=\"out{i}\", shape=doublecircle];");
        let _ = writeln!(out, "  n{} -> out{i};", s.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::adder_fu;

    #[test]
    fn dot_contains_all_nodes_and_outputs() {
        let nl = adder_fu(2);
        let dot = to_dot(&nl);
        assert!(dot.contains("in0"));
        assert!(dot.contains("out1"));
        assert!(dot.contains("xor"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn keys_are_highlighted() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input();
        let k = nl.add_key();
        let x = nl.and(a, k);
        nl.mark_output(x);
        assert!(to_dot(&nl).contains("color=red"));
    }

    #[test]
    fn annotations_fill_and_tooltip_marked_nodes() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input();
        let k = nl.add_key();
        let x = nl.xor(a, k);
        nl.mark_output(x);
        let mut ann = BTreeMap::new();
        ann.insert(
            x.index(),
            NodeAnnotation {
                color: "orange".into(),
                tooltip: "LB0704 isolated key path (key 0)".into(),
            },
        );
        let dot = to_dot_annotated(&nl, &ann);
        assert!(dot.contains("fillcolor=\"orange\""));
        assert!(dot.contains("tooltip=\"LB0704 isolated key path (key 0)\""));
        // unannotated nodes stay plain
        assert_eq!(dot.matches("style=filled").count(), 1);
        // and the plain export is unchanged by the feature
        assert!(!to_dot(&nl).contains("style=filled"));
    }
}
