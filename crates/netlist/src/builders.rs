//! Structural builders: arithmetic datapath cells and whole functional-unit
//! modules used as locking targets.

use crate::{Netlist, Signal};

/// A bundle of signals forming a word, LSB first.
pub type Bus = Vec<Signal>;

/// Full adder: returns `(sum, carry)`.
pub fn full_adder(nl: &mut Netlist, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
    let axb = nl.xor(a, b);
    let sum = nl.xor(axb, cin);
    let t1 = nl.and(a, b);
    let t2 = nl.and(axb, cin);
    let carry = nl.or(t1, t2);
    (sum, carry)
}

/// Ripple-carry adder over equal-width buses; result wraps (carry-out
/// discarded), matching the wrapping semantics of the HLS operations.
///
/// # Panics
/// Panics if the buses differ in width or are empty.
pub fn ripple_carry_adder(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    assert!(!a.is_empty(), "adder width must be positive");
    let mut carry = nl.lit_false();
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c) = full_adder(nl, a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Two's-complement subtractor (`a - b`, wrapping): `a + !b + 1`.
pub fn ripple_carry_subtractor(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(
        a.len(),
        b.len(),
        "subtractor operands must have equal width"
    );
    assert!(!a.is_empty(), "subtractor width must be positive");
    let mut carry = nl.lit_true();
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let nb = nl.not(b[i]);
        let (s, c) = full_adder(nl, a[i], nb, carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Shift-and-add array multiplier; returns the low `width` bits of `a * b`
/// (wrapping), matching the HLS `Mul` semantics.
pub fn array_multiplier(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(
        a.len(),
        b.len(),
        "multiplier operands must have equal width"
    );
    assert!(!a.is_empty(), "multiplier width must be positive");
    let w = a.len();
    let zero = nl.lit_false();
    let mut acc: Bus = vec![zero; w];
    for (i, &bi) in b.iter().enumerate() {
        // Partial product of a shifted left by i, gated by b_i, truncated to w.
        let mut pp: Bus = vec![zero; w];
        for (j, &aj) in a.iter().enumerate() {
            if i + j < w {
                pp[i + j] = nl.and(aj, bi);
            }
        }
        acc = ripple_carry_adder(nl, &acc, &pp);
    }
    acc
}

/// Equality of a bus against a constant: a single AND-reduced comparator.
pub fn equals_const(nl: &mut Netlist, bus: &[Signal], value: u64) -> Signal {
    assert!(!bus.is_empty(), "comparator width must be positive");
    let mut acc: Option<Signal> = None;
    for (i, &s) in bus.iter().enumerate() {
        let bit = (value >> i) & 1 == 1;
        let term = if bit { s } else { nl.not(s) };
        acc = Some(match acc {
            None => term,
            Some(prev) => nl.and(prev, term),
        });
    }
    acc.expect("non-empty bus")
}

/// Equality of two buses.
pub fn equals(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Signal {
    assert_eq!(
        a.len(),
        b.len(),
        "comparator operands must have equal width"
    );
    assert!(!a.is_empty(), "comparator width must be positive");
    let mut acc: Option<Signal> = None;
    for i in 0..a.len() {
        let term = nl.xnor(a[i], b[i]);
        acc = Some(match acc {
            None => term,
            Some(prev) => nl.and(prev, term),
        });
    }
    acc.expect("non-empty bus")
}

/// Bitwise XOR of two buses.
pub fn xor_bus(nl: &mut Netlist, a: &[Signal], b: &[Signal]) -> Bus {
    assert_eq!(a.len(), b.len(), "xor operands must have equal width");
    a.iter().zip(b).map(|(&x, &y)| nl.xor(x, y)).collect()
}

/// Bus-wide 2:1 mux: `sel ? t : f`.
pub fn mux_bus(nl: &mut Netlist, sel: Signal, t: &[Signal], f: &[Signal]) -> Bus {
    assert_eq!(t.len(), f.len(), "mux operands must have equal width");
    t.iter().zip(f).map(|(&x, &y)| nl.mux(sel, x, y)).collect()
}

/// XOR a single control signal into every bit of a bus (the classic
/// output-corruption point used by locking schemes).
pub fn conditional_invert(nl: &mut Netlist, flip: Signal, bus: &[Signal]) -> Bus {
    bus.iter().map(|&s| nl.xor(s, flip)).collect()
}

/// A `width`-bit adder functional unit: inputs `a` then `b` (LSB first),
/// outputs `a + b mod 2^width`.
///
/// # Example
/// ```
/// use lockbind_netlist::builders::adder_fu;
/// let nl = adder_fu(8);
/// assert_eq!(nl.eval_words(&[250, 10], 8, &[]), vec![4]);
/// ```
pub fn adder_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("adder{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let sum = ripple_carry_adder(&mut nl, &a, &b);
    for s in sum {
        nl.mark_output(s);
    }
    nl
}

/// A `width`-bit subtractor functional unit (`a - b`, wrapping).
pub fn subtractor_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("sub{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let diff = ripple_carry_subtractor(&mut nl, &a, &b);
    for s in diff {
        nl.mark_output(s);
    }
    nl
}

/// A `width`-bit multiplier functional unit (low word of `a * b`).
pub fn multiplier_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("mul{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let prod = array_multiplier(&mut nl, &a, &b);
    for s in prod {
        nl.mark_output(s);
    }
    nl
}

/// A `width`-bit bitwise-XOR functional unit (cheap locking target used in
/// tests).
pub fn xor_fu(width: u32) -> Netlist {
    let mut nl = Netlist::new(format!("xor{width}"));
    let a = nl.add_inputs(width as usize);
    let b = nl.add_inputs(width as usize);
    let x = xor_bus(&mut nl, &a, &b);
    for s in x {
        nl.mark_output(s);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_exhaustive_4bit() {
        let nl = adder_fu(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(nl.eval_words(&[a, b], 4, &[]), vec![(a + b) & 0xF]);
            }
        }
    }

    #[test]
    fn subtractor_exhaustive_4bit() {
        let nl = subtractor_fu(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    nl.eval_words(&[a, b], 4, &[]),
                    vec![a.wrapping_sub(b) & 0xF]
                );
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let nl = multiplier_fu(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(nl.eval_words(&[a, b], 4, &[]), vec![(a * b) & 0xF]);
            }
        }
    }

    #[test]
    fn adder_random_8bit() {
        let nl = adder_fu(8);
        let mut x = 0x12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 8) & 0xFF;
            let b = (x >> 24) & 0xFF;
            assert_eq!(nl.eval_words(&[a, b], 8, &[]), vec![(a + b) & 0xFF]);
        }
    }

    #[test]
    fn multiplier_random_8bit() {
        let nl = multiplier_fu(8);
        let mut x = 0xBEEFu64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 8) & 0xFF;
            let b = (x >> 24) & 0xFF;
            assert_eq!(nl.eval_words(&[a, b], 8, &[]), vec![(a * b) & 0xFF]);
        }
    }

    #[test]
    fn equals_const_matches_only_value() {
        let mut nl = Netlist::new("eq");
        let bus = nl.add_inputs(4);
        let hit = equals_const(&mut nl, &bus, 0b1010);
        nl.mark_output(hit);
        for v in 0..16u64 {
            let out = nl.eval_words(&[v], 4, &[]);
            assert_eq!(out[0] & 1 == 1, v == 0b1010, "value {v}");
        }
    }

    #[test]
    fn equals_buses() {
        let mut nl = Netlist::new("eq2");
        let a = nl.add_inputs(3);
        let b = nl.add_inputs(3);
        let e = equals(&mut nl, &a, &b);
        nl.mark_output(e);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let bits: Vec<bool> = (0..3)
                    .map(|i| (x >> i) & 1 == 1)
                    .chain((0..3).map(|i| (y >> i) & 1 == 1))
                    .collect();
                let out = nl.eval(&bits, &[]).expect("ok");
                assert_eq!(out[0], x == y);
            }
        }
    }

    #[test]
    fn conditional_invert_flips_all_bits() {
        let mut nl = Netlist::new("ci");
        let bus = nl.add_inputs(4);
        let flip = nl.add_input();
        let out = conditional_invert(&mut nl, flip, &bus);
        for s in out {
            nl.mark_output(s);
        }
        // flip=0 passes through; flip=1 inverts.
        let pass = nl
            .eval(&[true, false, true, false, false], &[])
            .expect("ok");
        assert_eq!(pass, vec![true, false, true, false]);
        let inv = nl.eval(&[true, false, true, false, true], &[]).expect("ok");
        assert_eq!(inv, vec![false, true, false, true]);
    }

    #[test]
    fn mux_bus_selects_sides() {
        let mut nl = Netlist::new("mb");
        let sel = nl.add_input();
        let t = nl.add_inputs(2);
        let f = nl.add_inputs(2);
        let m = mux_bus(&mut nl, sel, &t, &f);
        for s in m {
            nl.mark_output(s);
        }
        let hi = nl.eval(&[true, true, false, false, true], &[]).expect("ok");
        assert_eq!(hi, vec![true, false]);
        let lo = nl
            .eval(&[false, true, false, false, true], &[])
            .expect("ok");
        assert_eq!(lo, vec![false, true]);
    }

    #[test]
    fn fu_shapes() {
        let a = adder_fu(8);
        assert_eq!((a.num_inputs(), a.num_outputs(), a.num_keys()), (16, 8, 0));
        let m = multiplier_fu(8);
        assert_eq!((m.num_inputs(), m.num_outputs()), (16, 8));
        assert!(m.gate_count() > a.gate_count());
    }
}
