//! Tseitin encoding of netlists into CNF.
//!
//! Literals follow the DIMACS convention: variables are positive `i32`s,
//! negation is arithmetic negation, variable 0 does not exist. The encoding
//! is *instantiation-based*: the same netlist can be encoded several times
//! into one [`Cnf`] with different input/key literal vectors — exactly what
//! the SAT attack's miter construction needs (two copies sharing inputs but
//! with independent keys).

use crate::{Gate, Netlist};

/// A CNF formula under construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_var(&mut self) -> i32 {
        self.num_vars += 1;
        self.num_vars as i32
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<i32> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    /// Panics if any literal references an unallocated variable or is 0.
    pub fn add_clause(&mut self, lits: impl Into<Vec<i32>>) {
        let lits = lits.into();
        for &l in &lits {
            assert!(l != 0, "literal 0 is invalid");
            assert!(
                l.unsigned_abs() <= self.num_vars,
                "literal {l} out of range"
            );
        }
        self.clauses.push(lits);
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// Checks a full assignment (`assignment[v-1]` is the value of variable
    /// `v`) against every clause; returns the index of the first violated
    /// clause, if any. Used by tests to validate encodings without a solver.
    pub fn first_violated(&self, assignment: &[bool]) -> Option<usize> {
        self.clauses.iter().position(|clause| {
            !clause.iter().any(|&l| {
                let v = assignment[(l.unsigned_abs() - 1) as usize];
                if l > 0 {
                    v
                } else {
                    !v
                }
            })
        })
    }
}

/// Encodes one instantiation of `netlist` into `cnf`.
///
/// `input_lits` and `key_lits` supply the literals standing for the primary
/// and key inputs of this instance (they may be shared with other instances).
/// Returns the output literals in output-declaration order.
///
/// # Panics
/// Panics if the literal vectors do not match the netlist's arities.
pub fn encode_netlist(
    netlist: &Netlist,
    cnf: &mut Cnf,
    input_lits: &[i32],
    key_lits: &[i32],
) -> Vec<i32> {
    encode_netlist_with_map(netlist, cnf, input_lits, key_lits).0
}

/// Like [`encode_netlist`], but additionally returns the literal assigned to
/// every netlist node (indexed by [`crate::Signal::index`]). Useful for
/// diagnostics and for tests that validate the encoding against simulation.
///
/// # Panics
/// Same as [`encode_netlist`].
pub fn encode_netlist_with_map(
    netlist: &Netlist,
    cnf: &mut Cnf,
    input_lits: &[i32],
    key_lits: &[i32],
) -> (Vec<i32>, Vec<i32>) {
    assert_eq!(
        input_lits.len(),
        netlist.num_inputs(),
        "input literal count mismatch"
    );
    assert_eq!(
        key_lits.len(),
        netlist.num_keys(),
        "key literal count mismatch"
    );

    let mut lit_of: Vec<i32> = Vec::with_capacity(netlist.num_nodes());
    let mut false_lit: Option<i32> = None;
    for (_, gate) in netlist.iter_gates() {
        let lit = match gate {
            Gate::False => match false_lit {
                Some(l) => l,
                None => {
                    let v = cnf.new_var();
                    cnf.add_clause([-v]);
                    false_lit = Some(v);
                    v
                }
            },
            Gate::Input(i) => input_lits[i],
            Gate::Key(i) => key_lits[i],
            Gate::Not(a) => -lit_of[a.index()],
            Gate::And(a, b) => {
                let (x, y) = (lit_of[a.index()], lit_of[b.index()]);
                let c = cnf.new_var();
                cnf.add_clause([-c, x]);
                cnf.add_clause([-c, y]);
                cnf.add_clause([c, -x, -y]);
                c
            }
            Gate::Or(a, b) => {
                let (x, y) = (lit_of[a.index()], lit_of[b.index()]);
                let c = cnf.new_var();
                cnf.add_clause([c, -x]);
                cnf.add_clause([c, -y]);
                cnf.add_clause([-c, x, y]);
                c
            }
            Gate::Xor(a, b) => {
                let (x, y) = (lit_of[a.index()], lit_of[b.index()]);
                let c = cnf.new_var();
                cnf.add_clause([-c, x, y]);
                cnf.add_clause([-c, -x, -y]);
                cnf.add_clause([c, -x, y]);
                cnf.add_clause([c, x, -y]);
                c
            }
        };
        lit_of.push(lit);
    }
    let outputs = netlist
        .outputs()
        .iter()
        .map(|s| lit_of[s.index()])
        .collect();
    (outputs, lit_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{adder_fu, multiplier_fu};
    use crate::Signal;

    /// Computes per-node boolean values of a netlist for one stimulus.
    fn node_values(nl: &Netlist, inputs: &[bool], keys: &[bool]) -> Vec<bool> {
        let mut vals = Vec::with_capacity(nl.num_nodes());
        for (_, gate) in nl.iter_gates() {
            let v = match gate {
                Gate::False => false,
                Gate::Input(i) => inputs[i],
                Gate::Key(i) => keys[i],
                Gate::And(a, b) => vals[a.index()] && vals[b.index()],
                Gate::Or(a, b) => vals[a.index()] || vals[b.index()],
                Gate::Xor(a, b) => vals[a.index()] != vals[b.index()],
                Gate::Not(a) => !vals[a.index()],
            };
            vals.push(v);
        }
        vals
    }

    /// Builds the full CNF assignment implied by a netlist stimulus: every
    /// node's literal is set to the simulated node value.
    fn induced_assignment(
        cnf: &Cnf,
        lit_of: &[i32],
        values: &[bool],
        input_lits: &[i32],
        input_bits: &[bool],
    ) -> Vec<bool> {
        let mut assign = vec![false; cnf.num_vars() as usize];
        for (lit, &bit) in input_lits.iter().zip(input_bits) {
            assign[(lit.unsigned_abs() - 1) as usize] = if *lit > 0 { bit } else { !bit };
        }
        for (node, &lit) in lit_of.iter().enumerate() {
            let var = (lit.unsigned_abs() - 1) as usize;
            let val = if lit > 0 { values[node] } else { !values[node] };
            assign[var] = val;
        }
        assign
    }

    #[test]
    fn tseitin_soundness_on_adder_points() {
        let nl = adder_fu(4);
        let mut cnf = Cnf::new();
        let inputs = cnf.new_vars(nl.num_inputs());
        let (outputs, lit_of) = encode_netlist_with_map(&nl, &mut cnf, &inputs, &[]);

        for (a, b) in [(3u64, 5u64), (15, 1), (9, 9), (0, 0), (15, 15)] {
            let in_bits: Vec<bool> = (0..4)
                .map(|i| (a >> i) & 1 == 1)
                .chain((0..4).map(|i| (b >> i) & 1 == 1))
                .collect();
            let values = node_values(&nl, &in_bits, &[]);
            let assign = induced_assignment(&cnf, &lit_of, &values, &inputs, &in_bits);
            assert_eq!(cnf.first_violated(&assign), None, "inputs ({a},{b})");
            // Output literals decode to the simulated sum.
            let sim = nl.eval(&in_bits, &[]).expect("ok");
            for (lit, &expect) in outputs.iter().zip(&sim) {
                let v = assign[(lit.unsigned_abs() - 1) as usize];
                let v = if *lit > 0 { v } else { !v };
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn flipping_an_output_violates_a_clause() {
        let nl = multiplier_fu(3);
        let mut cnf = Cnf::new();
        let inputs = cnf.new_vars(nl.num_inputs());
        let (outputs, lit_of) = encode_netlist_with_map(&nl, &mut cnf, &inputs, &[]);
        let in_bits = vec![true, true, false, true, false, false]; // a=3, b=1
        let values = node_values(&nl, &in_bits, &[]);
        let mut assign = induced_assignment(&cnf, &lit_of, &values, &inputs, &in_bits);
        assert_eq!(cnf.first_violated(&assign), None);
        // Corrupt output bit 0: some gate clause must now be violated.
        let var = (outputs[0].unsigned_abs() - 1) as usize;
        assign[var] = !assign[var];
        assert!(cnf.first_violated(&assign).is_some());
    }

    #[test]
    fn keyed_instances_can_share_inputs() {
        // Two instances of a 1-bit keyed xor sharing the input var but with
        // distinct key vars (miter building block).
        let mut nl = Netlist::new("kx");
        let a = nl.add_input();
        let k = nl.add_key();
        let x = nl.xor(a, k);
        nl.mark_output(x);

        let mut cnf = Cnf::new();
        let shared_in = cnf.new_vars(1);
        let key1 = cnf.new_vars(1);
        let key2 = cnf.new_vars(1);
        let o1 = encode_netlist(&nl, &mut cnf, &shared_in, &key1);
        let o2 = encode_netlist(&nl, &mut cnf, &shared_in, &key2);

        // With keys equal, outputs must agree; check via induced assignments.
        for (in_v, k_v) in [(false, false), (true, false), (true, true)] {
            let values = node_values(&nl, &[in_v], &[k_v]);
            let mut assign = vec![false; cnf.num_vars() as usize];
            assign[(shared_in[0] - 1) as usize] = in_v;
            assign[(key1[0] - 1) as usize] = k_v;
            assign[(key2[0] - 1) as usize] = k_v;
            // Replay both instances (their aux vars are disjoint).
            let out = values[nl.outputs()[0].index()];
            for lits in [&o1, &o2] {
                let var = (lits[0].unsigned_abs() - 1) as usize;
                assign[var] = if lits[0] > 0 { out } else { !out };
            }
            // The xor aux var IS the output var here, so the assignment is
            // complete; both instances' clauses must hold.
            assert_eq!(cnf.first_violated(&assign), None);
        }
    }

    #[test]
    fn cnf_guards_bad_literals() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        cnf.add_clause([v, -v]);
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(cnf.clauses().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cnf_rejects_unallocated_var() {
        let mut cnf = Cnf::new();
        cnf.add_clause([3]);
    }

    #[test]
    #[should_panic(expected = "literal 0")]
    fn cnf_rejects_zero_literal() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause([0]);
    }

    #[test]
    fn false_gate_shares_one_var() {
        let mut nl = Netlist::new("f");
        let f1 = nl.lit_false();
        let f2 = nl.lit_false();
        let o = nl.or(f1, f2);
        nl.mark_output(o);
        let mut cnf = Cnf::new();
        let before = cnf.num_vars();
        let _ = encode_netlist(&nl, &mut cnf, &[], &[]);
        // One false var + one OR var.
        assert_eq!(cnf.num_vars() - before, 2);
        let _ = Signal(0); // silence unused import paths on some cfgs
    }
}
