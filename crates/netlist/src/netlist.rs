use std::fmt;

use crate::NetlistError;

/// A signal (net) in a [`Netlist`]: the output of one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// Index of the driving gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A gate in the netlist. The gate set is deliberately small; richer cells
/// (mux, xnor, comparators) are composed structurally by [`crate::builders`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant logic 0.
    False,
    /// Primary input with the given index.
    Input(usize),
    /// Key input with the given index (withheld from the foundry).
    Key(usize),
    /// 2-input AND.
    And(Signal, Signal),
    /// 2-input OR.
    Or(Signal, Signal),
    /// 2-input XOR.
    Xor(Signal, Signal),
    /// Inverter.
    Not(Signal),
}

impl Gate {
    /// The signals this gate reads, in operand order. Terminals
    /// ([`Gate::False`], [`Gate::Input`], [`Gate::Key`]) have none.
    pub fn operands(&self) -> impl Iterator<Item = Signal> + '_ {
        let (a, b) = match *self {
            Gate::False | Gate::Input(_) | Gate::Key(_) => (None, None),
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => (Some(a), Some(b)),
            Gate::Not(a) => (Some(a), None),
        };
        a.into_iter().chain(b)
    }
}

/// A combinational gate-level netlist with primary inputs, key inputs, and
/// declared outputs. Construction is append-only, so the graph is acyclic by
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    gates: Vec<Gate>,
    num_inputs: usize,
    num_keys: usize,
    outputs: Vec<Signal>,
    name: String,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            gates: Vec::new(),
            num_inputs: 0,
            num_keys: 0,
            outputs: Vec::new(),
            name: name.into(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a new primary input and returns its signal.
    pub fn add_input(&mut self) -> Signal {
        let s = self.push(Gate::Input(self.num_inputs));
        self.num_inputs += 1;
        s
    }

    /// Declares `n` primary inputs (an input bus, LSB first).
    pub fn add_inputs(&mut self, n: usize) -> Vec<Signal> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Declares a new key input and returns its signal.
    pub fn add_key(&mut self) -> Signal {
        let s = self.push(Gate::Key(self.num_keys));
        self.num_keys += 1;
        s
    }

    /// Declares `n` key inputs (a key bus, LSB first).
    pub fn add_keys(&mut self, n: usize) -> Vec<Signal> {
        (0..n).map(|_| self.add_key()).collect()
    }

    /// The constant-0 signal.
    pub fn lit_false(&mut self) -> Signal {
        self.push(Gate::False)
    }

    /// The constant-1 signal.
    pub fn lit_true(&mut self) -> Signal {
        let f = self.lit_false();
        self.not(f)
    }

    /// Adds an AND gate.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(Gate::And(a, b))
    }

    /// Adds an OR gate.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(Gate::Or(a, b))
    }

    /// Adds an XOR gate.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(Gate::Xor(a, b))
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.push(Gate::Not(a))
    }

    /// XNOR composed from XOR + NOT.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2:1 mux: `sel ? t : f`, composed structurally.
    pub fn mux(&mut self, sel: Signal, t: Signal, f: Signal) -> Signal {
        let ns = self.not(sel);
        let a = self.and(sel, t);
        let b = self.and(ns, f);
        self.or(a, b)
    }

    /// Marks a signal as a primary output.
    pub fn mark_output(&mut self, s: Signal) {
        self.outputs.push(s);
    }

    /// Declared outputs, in declaration order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of key inputs.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Number of declared outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Total gates including inputs/keys/constants.
    pub fn num_nodes(&self) -> usize {
        self.gates.len()
    }

    /// Logic gate count (excluding inputs, keys, and constants) — the area
    /// proxy used in overhead comparisons.
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input(_) | Gate::Key(_) | Gate::False))
            .count()
    }

    /// The signal handle for net index `i` (the inverse of
    /// [`Signal::index`]). Panics when `i` is out of range.
    pub fn signal(&self, i: usize) -> Signal {
        assert!(i < self.gates.len(), "net index {i} out of range");
        Signal(i as u32)
    }

    /// The gate driving `s`.
    pub fn gate(&self, s: Signal) -> Gate {
        self.gates[s.index()]
    }

    /// Iterates over all gates in topological order.
    pub fn iter_gates(&self) -> impl Iterator<Item = (Signal, Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, &g)| (Signal(i as u32), g))
    }

    fn push(&mut self, gate: Gate) -> Signal {
        match gate {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                assert!(
                    a.index() < self.gates.len() && b.index() < self.gates.len(),
                    "gate references future signal"
                );
            }
            Gate::Not(a) => {
                assert!(
                    a.index() < self.gates.len(),
                    "gate references future signal"
                );
            }
            _ => {}
        }
        let id = Signal(u32::try_from(self.gates.len()).expect("netlist too large"));
        self.gates.push(gate);
        id
    }

    /// Evaluates the netlist 64 frames at a time: each input/key value is a
    /// 64-lane bit vector, and each output is the corresponding 64-lane
    /// result.
    ///
    /// # Errors
    /// Arity errors if `inputs`/`keys` lengths do not match the declarations.
    pub fn eval_u64(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        if inputs.len() != self.num_inputs {
            return Err(NetlistError::InputArityMismatch {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        if keys.len() != self.num_keys {
            return Err(NetlistError::KeyArityMismatch {
                expected: self.num_keys,
                got: keys.len(),
            });
        }
        let mut val = vec![0u64; self.gates.len()];
        for (i, &g) in self.gates.iter().enumerate() {
            val[i] = match g {
                Gate::False => 0,
                Gate::Input(k) => inputs[k],
                Gate::Key(k) => keys[k],
                Gate::And(a, b) => val[a.index()] & val[b.index()],
                Gate::Or(a, b) => val[a.index()] | val[b.index()],
                Gate::Xor(a, b) => val[a.index()] ^ val[b.index()],
                Gate::Not(a) => !val[a.index()],
            };
        }
        Ok(self.outputs.iter().map(|s| val[s.index()]).collect())
    }

    /// Single-frame boolean evaluation.
    ///
    /// # Errors
    /// Same as [`Netlist::eval_u64`].
    pub fn eval(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let to_u64 = |bits: &[bool]| -> Vec<u64> {
            bits.iter().map(|&b| if b { !0u64 } else { 0 }).collect()
        };
        let out = self.eval_u64(&to_u64(inputs), &to_u64(keys))?;
        Ok(out.into_iter().map(|v| v & 1 == 1).collect())
    }

    /// Word-level evaluation convenience: groups the primary inputs into
    /// `width`-bit words (LSB-first within each word, words in declaration
    /// order), evaluates, and regroups the outputs into one word (if the
    /// output count equals `width`) or multiple words.
    ///
    /// `keys` is a key-bit vector (LSB-first across the whole key).
    ///
    /// # Panics
    /// Panics if the input count is not a multiple of `width` or arity of
    /// `words`/`keys` is wrong. Intended for tests and examples; use
    /// [`Netlist::eval_u64`] for fallible evaluation.
    pub fn eval_words(&self, words: &[u64], width: u32, key: &[bool]) -> Vec<u64> {
        let w = width as usize;
        assert!(self.num_inputs % w == 0, "inputs not divisible into words");
        assert_eq!(words.len() * w, self.num_inputs, "wrong number of words");
        let mut inputs = Vec::with_capacity(self.num_inputs);
        for &word in words {
            for bit in 0..w {
                inputs.push((word >> bit) & 1 == 1);
            }
        }
        let keys: Vec<bool> = key.to_vec();
        let out_bits = self.eval(&inputs, &keys).expect("arity checked above");
        out_bits
            .chunks(w.min(out_bits.len().max(1)))
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
            })
            .collect()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {} ({} inputs, {} keys, {} outputs, {} gates)",
            self.name,
            self.num_inputs,
            self.num_keys,
            self.outputs.len(),
            self.gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_evaluate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let b = nl.add_input();
        let and = nl.and(a, b);
        let or = nl.or(a, b);
        let xor = nl.xor(a, b);
        let not = nl.not(a);
        for s in [and, or, xor, not] {
            nl.mark_output(s);
        }
        let table = [
            ((false, false), (false, false, false, true)),
            ((false, true), (false, true, true, true)),
            ((true, false), (false, true, true, false)),
            ((true, true), (true, true, false, false)),
        ];
        for ((x, y), (e_and, e_or, e_xor, e_not)) in table {
            let out = nl.eval(&[x, y], &[]).expect("arity ok");
            assert_eq!(out, vec![e_and, e_or, e_xor, e_not]);
        }
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new("mux");
        let s = nl.add_input();
        let t = nl.add_input();
        let f = nl.add_input();
        let m = nl.mux(s, t, f);
        nl.mark_output(m);
        assert_eq!(nl.eval(&[true, true, false], &[]).expect("ok"), vec![true]);
        assert_eq!(
            nl.eval(&[false, true, false], &[]).expect("ok"),
            vec![false]
        );
        assert_eq!(nl.eval(&[false, false, true], &[]).expect("ok"), vec![true]);
    }

    #[test]
    fn xnor_truth_table() {
        let mut nl = Netlist::new("xnor");
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.xnor(a, b);
        nl.mark_output(x);
        assert_eq!(nl.eval(&[false, false], &[]).expect("ok"), vec![true]);
        assert_eq!(nl.eval(&[true, false], &[]).expect("ok"), vec![false]);
    }

    #[test]
    fn key_inputs_participate() {
        let mut nl = Netlist::new("keyed");
        let a = nl.add_input();
        let k = nl.add_key();
        let x = nl.xor(a, k);
        nl.mark_output(x);
        assert_eq!(nl.eval(&[true], &[false]).expect("ok"), vec![true]);
        assert_eq!(nl.eval(&[true], &[true]).expect("ok"), vec![false]);
        assert_eq!(nl.num_keys(), 1);
    }

    #[test]
    fn arity_errors() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        nl.mark_output(a);
        assert!(matches!(
            nl.eval(&[], &[]),
            Err(NetlistError::InputArityMismatch {
                expected: 1,
                got: 0
            })
        ));
        assert!(matches!(
            nl.eval(&[true], &[true]),
            Err(NetlistError::KeyArityMismatch {
                expected: 0,
                got: 1
            })
        ));
    }

    #[test]
    fn gate_count_excludes_terminals() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let b = nl.add_input();
        let k = nl.add_key();
        let x = nl.xor(a, b);
        let y = nl.and(x, k);
        nl.mark_output(y);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.num_nodes(), 5);
    }

    #[test]
    fn eval_u64_is_lanewise() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.xor(a, b);
        nl.mark_output(x);
        let out = nl.eval_u64(&[0b1100, 0b1010], &[]).expect("ok");
        assert_eq!(out, vec![0b0110]);
    }

    #[test]
    fn lit_true_and_false() {
        let mut nl = Netlist::new("t");
        let t = nl.lit_true();
        let f = nl.lit_false();
        nl.mark_output(t);
        nl.mark_output(f);
        assert_eq!(nl.eval(&[], &[]).expect("ok"), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "future signal")]
    fn forward_reference_panics() {
        let mut nl = Netlist::new("t");
        let _ = nl.not(Signal(7));
    }
}
