//! Netlist optimization: constant folding, common-subexpression
//! elimination (structural hashing), and dead-gate elimination.
//!
//! Locked netlists are built compositionally (clone + splice), which leaves
//! redundant constants and duplicate comparator substructures behind. This
//! pass canonicalizes them so gate-count comparisons between locking
//! schemes measure logic, not construction artifacts.

use std::collections::HashMap;

use crate::{Gate, Netlist, Signal};

/// Result of [`optimize`]: the optimized netlist plus a summary.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimized, functionally equivalent netlist.
    pub netlist: Netlist,
    /// Gates before optimization (logic gates only).
    pub gates_before: usize,
    /// Gates after optimization.
    pub gates_after: usize,
}

/// Canonical gate shape for structural hashing. Commutative gates sort
/// their operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Shape {
    Input(usize),
    Key(usize),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Not(u32),
}

/// Optimizes a netlist: folds constants, deduplicates structurally
/// identical gates, simplifies trivial identities (`x & x = x`,
/// `x ^ x = 0`, `!!x = x`, constant absorption), and drops gates that do
/// not reach any output. Iterates to a fixpoint (one pass can expose new
/// folds, e.g. `x ^ 1` becomes `!1` which folds next round).
///
/// The result is functionally equivalent on every input/key assignment
/// (property-tested).
pub fn optimize(netlist: &Netlist) -> OptimizeOutcome {
    let gates_before = netlist.gate_count();
    let mut current = optimize_once(netlist);
    loop {
        let next = optimize_once(&current);
        if next.gate_count() >= current.gate_count() {
            break;
        }
        current = next;
    }
    OptimizeOutcome {
        gates_before,
        gates_after: current.gate_count(),
        netlist: current,
    }
}

/// One rewrite + sweep pass.
fn optimize_once(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name().to_string());
    // Pre-declare inputs/keys so indices survive.
    let inputs: Vec<Signal> = (0..netlist.num_inputs()).map(|_| out.add_input()).collect();
    let keys: Vec<Signal> = (0..netlist.num_keys()).map(|_| out.add_key()).collect();

    // Lazily-created canonical constants.
    let mut const_false: Option<Signal> = None;
    let mut const_true: Option<Signal> = None;

    // value-number of each new signal (we reuse the signal id itself) and
    // a map from canonical keys to existing signals.
    let mut hash: HashMap<Shape, Signal> = HashMap::new();
    for (i, &s) in inputs.iter().enumerate() {
        hash.insert(Shape::Input(i), s);
    }
    for (i, &s) in keys.iter().enumerate() {
        hash.insert(Shape::Key(i), s);
    }

    // Classification of a new signal: constant or general.
    #[derive(Clone, Copy, PartialEq)]
    enum Knowledge {
        Zero,
        One,
        Other,
    }
    let mut know: HashMap<Signal, Knowledge> = HashMap::new();

    let mut map: Vec<Signal> = Vec::with_capacity(netlist.num_nodes());
    for (_, gate) in netlist.iter_gates() {
        let new = match gate {
            Gate::False => {
                let s = *const_false.get_or_insert_with(|| out.lit_false());
                know.insert(s, Knowledge::Zero);
                s
            }
            Gate::Input(i) => inputs[i],
            Gate::Key(i) => keys[i],
            Gate::Not(a) => {
                let a = map[a.index()];
                match know.get(&a) {
                    Some(Knowledge::Zero) => {
                        let s = *const_true.get_or_insert_with(|| out.lit_true());
                        know.insert(s, Knowledge::One);
                        s
                    }
                    Some(Knowledge::One) => {
                        let s = *const_false.get_or_insert_with(|| out.lit_false());
                        know.insert(s, Knowledge::Zero);
                        s
                    }
                    _ => {
                        // !!x = x
                        if let Gate::Not(inner) = out.gate(a) {
                            inner
                        } else {
                            let key = Shape::Not(a.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.not(a))
                        }
                    }
                }
            }
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let (ka, kb) = (
                    know.get(&a).copied().unwrap_or(Knowledge::Other),
                    know.get(&b).copied().unwrap_or(Knowledge::Other),
                );
                let mk_false =
                    |out: &mut Netlist,
                     cf: &mut Option<Signal>,
                     know: &mut HashMap<Signal, Knowledge>| {
                        let s = *cf.get_or_insert_with(|| out.lit_false());
                        know.insert(s, Knowledge::Zero);
                        s
                    };
                let mk_true =
                    |out: &mut Netlist,
                     ct: &mut Option<Signal>,
                     know: &mut HashMap<Signal, Knowledge>| {
                        let s = *ct.get_or_insert_with(|| out.lit_true());
                        know.insert(s, Knowledge::One);
                        s
                    };
                match gate {
                    Gate::And(..) => match (ka, kb) {
                        (Knowledge::Zero, _) | (_, Knowledge::Zero) => {
                            mk_false(&mut out, &mut const_false, &mut know)
                        }
                        (Knowledge::One, _) => b,
                        (_, Knowledge::One) => a,
                        _ if a == b => a,
                        _ => {
                            let (x, y) = if a <= b { (a, b) } else { (b, a) };
                            let key = Shape::And(x.index() as u32, y.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.and(x, y))
                        }
                    },
                    Gate::Or(..) => match (ka, kb) {
                        (Knowledge::One, _) | (_, Knowledge::One) => {
                            mk_true(&mut out, &mut const_true, &mut know)
                        }
                        (Knowledge::Zero, _) => b,
                        (_, Knowledge::Zero) => a,
                        _ if a == b => a,
                        _ => {
                            let (x, y) = if a <= b { (a, b) } else { (b, a) };
                            let key = Shape::Or(x.index() as u32, y.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.or(x, y))
                        }
                    },
                    Gate::Xor(..) => match (ka, kb) {
                        (Knowledge::Zero, _) => b,
                        (_, Knowledge::Zero) => a,
                        (Knowledge::One, _) => {
                            let key = Shape::Not(b.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.not(b))
                        }
                        (_, Knowledge::One) => {
                            let key = Shape::Not(a.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.not(a))
                        }
                        _ if a == b => mk_false(&mut out, &mut const_false, &mut know),
                        _ => {
                            let (x, y) = if a <= b { (a, b) } else { (b, a) };
                            let key = Shape::Xor(x.index() as u32, y.index() as u32);
                            *hash.entry(key).or_insert_with(|| out.xor(x, y))
                        }
                    },
                    _ => unreachable!(),
                }
            }
        };
        map.push(new);
    }
    for o in netlist.outputs() {
        let s = map[o.index()];
        out.mark_output(s);
    }

    // Dead-gate elimination: rebuild keeping only the cone of the outputs.
    sweep(&out)
}

/// Rebuilds keeping only gates reachable from the outputs (inputs/keys are
/// always kept so interfaces stay stable).
fn sweep(netlist: &Netlist) -> Netlist {
    let mut live = vec![false; netlist.num_nodes()];
    let mut stack: Vec<usize> = netlist.outputs().iter().map(|s| s.index()).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        match netlist.gate(Signal(i as u32)) {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                stack.push(a.index());
                stack.push(b.index());
            }
            Gate::Not(a) => stack.push(a.index()),
            _ => {}
        }
    }

    let mut out = Netlist::new(netlist.name().to_string());
    let inputs: Vec<Signal> = (0..netlist.num_inputs()).map(|_| out.add_input()).collect();
    let keys: Vec<Signal> = (0..netlist.num_keys()).map(|_| out.add_key()).collect();
    let mut map: Vec<Option<Signal>> = vec![None; netlist.num_nodes()];
    for (sig, gate) in netlist.iter_gates() {
        let i = sig.index();
        let mapped = match gate {
            Gate::Input(k) => Some(inputs[k]),
            Gate::Key(k) => Some(keys[k]),
            _ if !live[i] => None,
            Gate::False => Some(out.lit_false()),
            Gate::And(a, b) => Some(out.and(
                map[a.index()].expect("live fanin"),
                map[b.index()].expect("live fanin"),
            )),
            Gate::Or(a, b) => Some(out.or(
                map[a.index()].expect("live fanin"),
                map[b.index()].expect("live fanin"),
            )),
            Gate::Xor(a, b) => Some(out.xor(
                map[a.index()].expect("live fanin"),
                map[b.index()].expect("live fanin"),
            )),
            Gate::Not(a) => Some(out.not(map[a.index()].expect("live fanin"))),
        };
        map[i] = mapped;
    }
    for o in netlist.outputs() {
        let s = map[o.index()].expect("outputs are live");
        out.mark_output(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{adder_fu, multiplier_fu};

    fn equivalent(a: &Netlist, b: &Netlist, samples: u64) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_keys(), b.num_keys());
        let mut x = 0x1234_5678u64;
        for _ in 0..samples {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ins: Vec<bool> = (0..a.num_inputs())
                .map(|i| (x >> (i % 60)) & 1 == 1)
                .collect();
            let ks: Vec<bool> = (0..a.num_keys())
                .map(|i| (x >> ((i + 13) % 60)) & 1 == 1)
                .collect();
            if a.eval(&ins, &ks).expect("ok") != b.eval(&ins, &ks).expect("ok") {
                return false;
            }
        }
        true
    }

    #[test]
    fn optimized_adder_is_equivalent_and_smaller_or_equal() {
        let nl = adder_fu(8);
        let opt = optimize(&nl);
        assert!(equivalent(&nl, &opt.netlist, 200));
        assert!(opt.gates_after <= opt.gates_before);
    }

    #[test]
    fn folds_constants_aggressively() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input();
        let f = nl.lit_false();
        let t = nl.lit_true();
        let and0 = nl.and(a, f); // = 0
        let or1 = nl.or(and0, t); // = 1
        let x = nl.xor(or1, a); // = !a
        nl.mark_output(x);
        let opt = optimize(&nl);
        assert!(equivalent(&nl, &opt.netlist, 4));
        // Just an inverter (plus the constant cone is swept).
        assert!(opt.gates_after <= 2, "gates_after = {}", opt.gates_after);
    }

    #[test]
    fn deduplicates_common_subexpressions() {
        let mut nl = Netlist::new("cse");
        let a = nl.add_input();
        let b = nl.add_input();
        let x1 = nl.and(a, b);
        let x2 = nl.and(a, b); // duplicate
        let x3 = nl.and(b, a); // commuted duplicate
        let o1 = nl.xor(x1, x2); // = 0
        let o2 = nl.or(x3, x1); // = x1
        nl.mark_output(o1);
        nl.mark_output(o2);
        let opt = optimize(&nl);
        assert!(equivalent(&nl, &opt.netlist, 8));
        assert!(opt.gates_after <= 2, "gates_after = {}", opt.gates_after);
    }

    #[test]
    fn double_negation_collapses() {
        let mut nl = Netlist::new("nn");
        let a = nl.add_input();
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        nl.mark_output(n3);
        let opt = optimize(&nl);
        assert!(equivalent(&nl, &opt.netlist, 4));
        assert_eq!(opt.gates_after, 1);
    }

    #[test]
    fn keyed_netlists_keep_interfaces() {
        use crate::builders::conditional_invert;
        let mut nl = Netlist::new("k");
        let ins = nl.add_inputs(4);
        let k = nl.add_key();
        let bus = conditional_invert(&mut nl, k, &ins);
        for s in bus {
            nl.mark_output(s);
        }
        let opt = optimize(&nl);
        assert_eq!(opt.netlist.num_keys(), 1);
        assert_eq!(opt.netlist.num_inputs(), 4);
        assert!(equivalent(&nl, &opt.netlist, 32));
    }

    #[test]
    fn multiplier_optimizes_without_changing_function() {
        let nl = multiplier_fu(6);
        let opt = optimize(&nl);
        assert!(equivalent(&nl, &opt.netlist, 300));
        // The array multiplier adds rows of constant-zero partial products
        // at the edges; folding must win at least a few gates.
        assert!(opt.gates_after < opt.gates_before);
    }
}
