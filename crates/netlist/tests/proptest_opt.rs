//! Property test: the optimizer preserves function on random netlists.

use lockbind_netlist::opt::optimize;
use lockbind_netlist::{Netlist, Signal};
use proptest::prelude::*;

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    let gate = (0..6usize, 0..64usize, 0..64usize);
    (1..5usize, 0..3usize, proptest::collection::vec(gate, 1..40)).prop_map(
        |(num_inputs, num_keys, gates)| {
            let mut nl = Netlist::new("random");
            let mut signals: Vec<Signal> = (0..num_inputs).map(|_| nl.add_input()).collect();
            signals.extend((0..num_keys).map(|_| nl.add_key()));
            signals.push(nl.lit_false());
            signals.push(nl.lit_true());
            for (kind, a, b) in gates {
                let sa = signals[a % signals.len()];
                let sb = signals[b % signals.len()];
                let s = match kind {
                    0 => nl.and(sa, sb),
                    1 => nl.or(sa, sb),
                    2 => nl.xor(sa, sb),
                    3 => nl.not(sa),
                    4 => nl.xnor(sa, sb),
                    _ => nl.mux(sa, sb, signals[(a + b) % signals.len()]),
                };
                signals.push(s);
            }
            // Mark the last few signals as outputs.
            for s in signals.iter().rev().take(3) {
                nl.mark_output(*s);
            }
            nl
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimize_preserves_function(nl in netlist_strategy(), stim in any::<u64>(), kstim in any::<u64>()) {
        let opt = optimize(&nl).netlist;
        prop_assert_eq!(opt.num_inputs(), nl.num_inputs());
        prop_assert_eq!(opt.num_keys(), nl.num_keys());
        prop_assert_eq!(opt.num_outputs(), nl.num_outputs());
        let ins: Vec<bool> = (0..nl.num_inputs()).map(|i| (stim >> i) & 1 == 1).collect();
        let ks: Vec<bool> = (0..nl.num_keys()).map(|i| (kstim >> i) & 1 == 1).collect();
        prop_assert_eq!(
            nl.eval(&ins, &ks).expect("arity"),
            opt.eval(&ins, &ks).expect("arity")
        );
    }

    #[test]
    fn optimize_never_grows(nl in netlist_strategy()) {
        let out = optimize(&nl);
        prop_assert!(out.gates_after <= out.gates_before);
    }

    #[test]
    fn optimize_is_idempotent_in_size(nl in netlist_strategy()) {
        let once = optimize(&nl);
        let twice = optimize(&once.netlist);
        prop_assert_eq!(twice.gates_after, once.gates_after);
    }
}
