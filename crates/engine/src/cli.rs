//! Shared command-line parsing for the figure binaries.
//!
//! All engine-backed binaries accept the same surface:
//!
//! ```text
//! <bin> [FRAMES] [SEED] [--frames N] [--seed S] [--threads N]
//!       [--json PATH] [--fail-fast]
//! ```
//!
//! The two positionals predate the engine (`fig4 300 2021`) and remain
//! supported; flags win when both are given.

use std::path::PathBuf;

use crate::pool::EngineConfig;

/// Parsed engine-binary arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineArgs {
    /// Profiling frames per kernel.
    pub frames: usize,
    /// Root seed (kernel preparation and per-cell streams).
    pub seed: u64,
    /// Worker threads; `0` = auto-detect.
    pub threads: usize,
    /// Where to write the run-metrics JSON, if anywhere.
    pub json: Option<PathBuf>,
    /// Abort the grid on the first failed cell.
    pub fail_fast: bool,
}

impl EngineArgs {
    /// Defaults shared by the paper binaries: 300 frames, seed 2021.
    pub fn paper_defaults() -> Self {
        EngineArgs {
            frames: 300,
            seed: 2021,
            threads: 0,
            json: None,
            fail_fast: false,
        }
    }

    /// Parses `std::env::args`, exiting with usage on a parse error.
    pub fn parse(bin: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1), Self::paper_defaults()) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{bin}: {message}");
                eprintln!("{}", Self::usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Usage string for `bin`.
    pub fn usage(bin: &str) -> String {
        format!(
            "usage: {bin} [FRAMES] [SEED] [--frames N] [--seed S] [--threads N] [--json PATH] [--fail-fast]"
        )
    }

    /// Parses an explicit argument iterator against `defaults`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags, missing flag
    /// values, unparsable numbers, or extra positionals.
    pub fn parse_from(
        args: impl Iterator<Item = String>,
        defaults: EngineArgs,
    ) -> Result<Self, String> {
        let mut out = defaults;
        let mut positionals = 0usize;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--frames" => out.frames = parse_num(&value_for("--frames")?, "--frames")?,
                "--seed" => out.seed = parse_num(&value_for("--seed")?, "--seed")?,
                "--threads" => out.threads = parse_num(&value_for("--threads")?, "--threads")?,
                "--json" => out.json = Some(PathBuf::from(value_for("--json")?)),
                "--fail-fast" => out.fail_fast = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                positional => {
                    match positionals {
                        0 => out.frames = parse_num(positional, "FRAMES")?,
                        1 => out.seed = parse_num(positional, "SEED")?,
                        _ => return Err(format!("unexpected argument {positional}")),
                    }
                    positionals += 1;
                }
            }
        }
        Ok(out)
    }

    /// The [`EngineConfig`] these arguments describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            root_seed: self.seed,
            fail_fast: self.fail_fast,
            progress: true,
        }
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{what}: invalid number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<EngineArgs, String> {
        EngineArgs::parse_from(
            args.iter().map(|s| s.to_string()),
            EngineArgs::paper_defaults(),
        )
    }

    #[test]
    fn defaults_match_paper() {
        let args = parse(&[]).unwrap();
        assert_eq!((args.frames, args.seed, args.threads), (300, 2021, 0));
        assert!(args.json.is_none());
        assert!(!args.fail_fast);
    }

    #[test]
    fn positionals_are_frames_then_seed() {
        let args = parse(&["120", "7"]).unwrap();
        assert_eq!((args.frames, args.seed), (120, 7));
        assert!(parse(&["120", "7", "9"]).is_err());
    }

    #[test]
    fn flags_parse_and_win() {
        let args = parse(&[
            "100",
            "--threads",
            "4",
            "--seed",
            "99",
            "--json",
            "results/run.json",
            "--fail-fast",
        ])
        .unwrap();
        assert_eq!(args.frames, 100);
        assert_eq!(args.seed, 99);
        assert_eq!(args.threads, 4);
        assert_eq!(
            args.json.as_deref(),
            Some(std::path::Path::new("results/run.json"))
        );
        assert!(args.fail_fast);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--threads"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["abc"]).unwrap_err().contains("invalid number"));
    }
}
