//! Shared command-line parsing for the figure binaries.
//!
//! All engine-backed binaries accept the same surface:
//!
//! ```text
//! <bin> [FRAMES] [SEED] [--frames N] [--seed S] [--threads N]
//!       [--json PATH] [--fail-fast] [--trace PATH] [--profile]
//!       [--cell-timeout SECS] [--retries N] [--retry-backoff-ms MS]
//!       [--checkpoint PATH] [--resume PATH] [--check] [--no-check]
//!       [--audit] [--no-audit]
//! ```
//!
//! The two positionals predate the engine (`fig4 300 2021`) and remain
//! supported; flags win when both are given.
//!
//! `--trace PATH` writes a chrome://tracing-compatible span trace,
//! `--profile` prints a per-stage profile table to stderr at exit; both
//! are serviced by [`EngineArgs::obs_session`] /
//! [`ObsSession::finish`], which every figure binary calls around its
//! engine runs.
//!
//! The resilience knobs map onto [`EngineConfig`]: `--cell-timeout` sets
//! the per-attempt deadline, `--retries`/`--retry-backoff-ms` the retry
//! policy, and `--checkpoint`/`--resume` the sweep checkpoint paths.
//! A deterministic fault plan can additionally be injected through the
//! `LOCKBIND_FAULTS` environment variable (see
//! [`FaultPlan::parse`](lockbind_resil::FaultPlan::parse) for the spec
//! grammar); it is read by [`EngineArgs::parse`] only, so programmatic
//! parsing stays environment-free.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lockbind_obs as obs;
use lockbind_resil::{FaultPlan, RetryPolicy};

use crate::pool::EngineConfig;

/// Parsed engine-binary arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineArgs {
    /// Profiling frames per kernel.
    pub frames: usize,
    /// Root seed (kernel preparation and per-cell streams).
    pub seed: u64,
    /// Worker threads; `0` = auto-detect.
    pub threads: usize,
    /// Where to write the run-metrics JSON, if anywhere.
    pub json: Option<PathBuf>,
    /// Abort the grid on the first failed cell.
    pub fail_fast: bool,
    /// Where to write the chrome://tracing span trace, if anywhere.
    pub trace: Option<PathBuf>,
    /// Print a per-stage profile table at end of run.
    pub profile: bool,
    /// Per-attempt cell deadline; `None` = no deadline.
    pub cell_timeout: Option<Duration>,
    /// Retry attempts for erroring/panicking cells.
    pub retries: u32,
    /// Base backoff between retry attempts, in milliseconds (doubles per
    /// attempt, capped by the policy).
    pub retry_backoff_ms: u64,
    /// Where to append the sweep checkpoint, if anywhere.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint to resume completed cells from, if anywhere.
    pub resume: Option<PathBuf>,
    /// Fault-injection plan from `LOCKBIND_FAULTS`, if set.
    pub faults: Option<FaultPlan>,
    /// Run the `lockbind-check` pass suite over every cell's artifacts
    /// (`--check` / `--no-check`). Defaults to on in debug builds, off in
    /// release builds.
    pub check: bool,
    /// Run the LB07xx structural-security audit over every cell's locked
    /// netlists (`--audit` / `--no-audit`). Findings only feed `audit.*`
    /// run metrics — they never fail cells — so the flag defaults to off.
    pub audit: bool,
}

impl EngineArgs {
    /// Defaults shared by the paper binaries: 300 frames, seed 2021.
    pub fn paper_defaults() -> Self {
        EngineArgs {
            frames: 300,
            seed: 2021,
            threads: 0,
            json: None,
            fail_fast: false,
            trace: None,
            profile: false,
            cell_timeout: None,
            retries: 0,
            retry_backoff_ms: 100,
            checkpoint: None,
            resume: None,
            faults: None,
            check: cfg!(debug_assertions),
            audit: false,
        }
    }

    /// Parses `std::env::args` plus the `LOCKBIND_FAULTS` environment
    /// variable and validates filesystem paths, exiting with usage on any
    /// error.
    pub fn parse(bin: &str) -> Self {
        let parsed = Self::parse_from(std::env::args().skip(1), Self::paper_defaults()).and_then(
            |mut args| {
                args.validate_paths()?;
                args.faults = FaultPlan::from_env(args.seed)
                    .map_err(|e| format!("{}: {e}", FaultPlan::ENV_VAR))?;
                Ok(args)
            },
        );
        match parsed {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{bin}: {message}");
                eprintln!("{}", Self::usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Usage string for `bin`.
    pub fn usage(bin: &str) -> String {
        format!(
            "usage: {bin} [FRAMES] [SEED] [--frames N] [--seed S] [--threads N] [--json PATH] [--fail-fast] [--trace PATH] [--profile] [--cell-timeout SECS] [--retries N] [--retry-backoff-ms MS] [--checkpoint PATH] [--resume PATH] [--check] [--no-check] [--audit] [--no-audit]"
        )
    }

    /// Parses an explicit argument iterator against `defaults`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags, missing flag
    /// values, unparsable numbers, or extra positionals.
    pub fn parse_from(
        args: impl Iterator<Item = String>,
        defaults: EngineArgs,
    ) -> Result<Self, String> {
        let mut out = defaults;
        let mut positionals = 0usize;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--frames" => out.frames = parse_num(&value_for("--frames")?, "--frames")?,
                "--seed" => out.seed = parse_seed(&value_for("--seed")?, "--seed")?,
                "--threads" => {
                    out.threads = parse_num(&value_for("--threads")?, "--threads")?;
                    if out.threads == 0 {
                        return Err(
                            "--threads: must be at least 1 (omit the flag to auto-detect)"
                                .to_string(),
                        );
                    }
                }
                "--json" => out.json = Some(PathBuf::from(value_for("--json")?)),
                "--fail-fast" => out.fail_fast = true,
                "--trace" => out.trace = Some(PathBuf::from(value_for("--trace")?)),
                "--profile" => out.profile = true,
                "--cell-timeout" => {
                    let secs: f64 = parse_num(&value_for("--cell-timeout")?, "--cell-timeout")?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!(
                            "--cell-timeout: must be a positive number of seconds, got {secs}"
                        ));
                    }
                    out.cell_timeout = Some(Duration::from_secs_f64(secs));
                }
                "--retries" => out.retries = parse_num(&value_for("--retries")?, "--retries")?,
                "--retry-backoff-ms" => {
                    out.retry_backoff_ms =
                        parse_num(&value_for("--retry-backoff-ms")?, "--retry-backoff-ms")?;
                }
                "--checkpoint" => out.checkpoint = Some(PathBuf::from(value_for("--checkpoint")?)),
                "--resume" => out.resume = Some(PathBuf::from(value_for("--resume")?)),
                "--check" => out.check = true,
                "--no-check" => out.check = false,
                "--audit" => out.audit = true,
                "--no-audit" => out.audit = false,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                positional => {
                    match positionals {
                        0 => out.frames = parse_num(positional, "FRAMES")?,
                        1 => out.seed = parse_seed(positional, "SEED")?,
                        _ => return Err(format!("unexpected argument {positional}")),
                    }
                    positionals += 1;
                }
            }
        }
        Ok(out)
    }

    /// Checks every path argument against the filesystem: output paths
    /// (`--json`, `--trace`, `--checkpoint`) must be creatable/writable
    /// and `--resume` must name an existing readable file.
    ///
    /// # Errors
    /// A human-readable message naming the offending flag and path.
    pub fn validate_paths(&self) -> Result<(), String> {
        for (flag, path) in [
            ("--json", &self.json),
            ("--trace", &self.trace),
            ("--checkpoint", &self.checkpoint),
        ] {
            if let Some(path) = path {
                probe_writable(flag, path)?;
            }
        }
        if let Some(path) = &self.resume {
            std::fs::File::open(path)
                .map_err(|e| format!("--resume: cannot read checkpoint {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// The [`EngineConfig`] these arguments describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            root_seed: self.seed,
            fail_fast: self.fail_fast,
            progress: true,
            cell_timeout: self.cell_timeout,
            retry: RetryPolicy::new(self.retries, Duration::from_millis(self.retry_backoff_ms)),
            faults: self.faults.clone(),
            checkpoint: self.checkpoint.clone(),
            resume: self.resume.clone(),
            check: self.check,
            audit: self.audit,
        }
    }

    /// Starts an observability session for this invocation: when `--trace`
    /// or `--profile` was given, enables span collection and timers and
    /// snapshots the metrics registry. Call **before** creating the engine
    /// and [`ObsSession::finish`] after the last run; the session may span
    /// several `Engine::run` calls (e.g. `ablation`).
    pub fn obs_session(&self) -> ObsSession {
        let enabled = self.trace.is_some() || self.profile;
        let collector = if enabled {
            obs::set_profiling(true);
            Some(obs::install_collector())
        } else {
            None
        };
        ObsSession {
            trace: self.trace.clone(),
            profile: self.profile,
            collector,
            before: obs::Registry::global().snapshot(),
            started: Instant::now(),
        }
    }
}

/// An in-flight observability session: holds the span collector and the
/// pre-run registry snapshot backing `--trace` / `--profile`.
pub struct ObsSession {
    trace: Option<PathBuf>,
    profile: bool,
    collector: Option<std::sync::Arc<obs::CollectingSink>>,
    before: obs::MetricsSnapshot,
    started: Instant,
}

impl ObsSession {
    /// Finishes the session: writes the chrome trace (if `--trace`) and
    /// prints the per-stage profile table to stderr (if `--profile`).
    /// A no-op when neither flag was given.
    ///
    /// # Errors
    /// Propagates trace-file write errors.
    pub fn finish(self) -> std::io::Result<()> {
        let Some(collector) = self.collector else {
            return Ok(());
        };
        let spans = collector.drain_sorted();
        obs::trace::set_sink(None);
        if let Some(path) = &self.trace {
            obs::write_chrome_trace(path, &spans)?;
            eprintln!(
                "[obs] {} spans written to {} (open in chrome://tracing or ui.perfetto.dev)",
                spans.len(),
                path.display()
            );
        }
        if self.profile {
            let delta = obs::Registry::global().snapshot().delta_from(&self.before);
            eprintln!(
                "{}",
                obs::render_profile(&spans, &delta, self.started.elapsed())
            );
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{what}: invalid number {text:?}"))
}

/// Like [`parse_num`] for seeds, with a dedicated message for negative
/// input (`--seed -1` otherwise reads as a cryptic "invalid number").
fn parse_seed(text: &str, what: &str) -> Result<u64, String> {
    if text.starts_with('-') {
        return Err(format!(
            "{what}: seeds are non-negative 64-bit integers, got {text:?}"
        ));
    }
    parse_num(text, what)
}

/// Probes that `path` is writable by creating parent directories and
/// opening the file for append (existing contents untouched). A fresh
/// probe file is removed again.
fn probe_writable(flag: &str, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!("{flag}: cannot create directory {}: {e}", parent.display())
            })?;
        }
    }
    let existed = path.exists();
    std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| format!("{flag}: cannot write {}: {e}", path.display()))?;
    if !existed {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<EngineArgs, String> {
        EngineArgs::parse_from(
            args.iter().map(|s| s.to_string()),
            EngineArgs::paper_defaults(),
        )
    }

    #[test]
    fn defaults_match_paper() {
        let args = parse(&[]).unwrap();
        assert_eq!((args.frames, args.seed, args.threads), (300, 2021, 0));
        assert!(args.json.is_none());
        assert!(!args.fail_fast);
        assert!(args.trace.is_none());
        assert!(!args.profile);
        assert_eq!(
            args.check,
            cfg!(debug_assertions),
            "checks default on in debug builds only"
        );
        assert!(!args.audit, "the audit is opt-in in every build profile");
    }

    #[test]
    fn check_flags_toggle_both_ways() {
        assert!(parse(&["--check"]).unwrap().check);
        assert!(!parse(&["--no-check"]).unwrap().check);
        // Last one wins, like any boolean toggle pair.
        assert!(parse(&["--no-check", "--check"]).unwrap().check);
        assert!(
            !parse(&["--check", "--no-check"])
                .unwrap()
                .engine_config()
                .check
        );
    }

    #[test]
    fn audit_flags_toggle_both_ways() {
        assert!(parse(&["--audit"]).unwrap().audit);
        assert!(!parse(&["--no-audit"]).unwrap().audit);
        assert!(parse(&["--no-audit", "--audit"]).unwrap().audit);
        assert!(
            !parse(&["--audit", "--no-audit"])
                .unwrap()
                .engine_config()
                .audit
        );
    }

    #[test]
    fn positionals_are_frames_then_seed() {
        let args = parse(&["120", "7"]).unwrap();
        assert_eq!((args.frames, args.seed), (120, 7));
        assert!(parse(&["120", "7", "9"]).is_err());
    }

    #[test]
    fn flags_parse_and_win() {
        let args = parse(&[
            "100",
            "--threads",
            "4",
            "--seed",
            "99",
            "--json",
            "results/run.json",
            "--fail-fast",
            "--trace",
            "trace.json",
            "--profile",
        ])
        .unwrap();
        assert_eq!(args.frames, 100);
        assert_eq!(args.seed, 99);
        assert_eq!(args.threads, 4);
        assert_eq!(
            args.json.as_deref(),
            Some(std::path::Path::new("results/run.json"))
        );
        assert!(args.fail_fast);
        assert_eq!(
            args.trace.as_deref(),
            Some(std::path::Path::new("trace.json"))
        );
        assert!(args.profile);
    }

    #[test]
    fn trace_flag_requires_a_path() {
        assert!(parse(&["--trace"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn disabled_session_finishes_without_side_effects() {
        let args = parse(&[]).unwrap();
        let session = args.obs_session();
        assert!(!lockbind_obs::tracing_enabled());
        session.finish().unwrap();
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--threads"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["abc"]).unwrap_err().contains("invalid number"));
    }

    #[test]
    fn zero_threads_is_rejected_with_guidance() {
        let err = parse(&["--threads", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(err.contains("auto-detect"), "{err}");
    }

    #[test]
    fn negative_seed_gets_a_dedicated_message() {
        for args in [&["--seed", "-3"][..], &["300", "-3"][..]] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("non-negative"), "{err}");
        }
        assert!(parse(&["--seed", "xyz"])
            .unwrap_err()
            .contains("invalid number"));
    }

    #[test]
    fn resilience_flags_parse_into_the_engine_config() {
        let args = parse(&[
            "--cell-timeout",
            "2.5",
            "--retries",
            "3",
            "--retry-backoff-ms",
            "10",
            "--checkpoint",
            "results/sweep.jsonl",
            "--resume",
            "results/sweep.jsonl",
        ])
        .unwrap();
        assert_eq!(args.cell_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(args.retries, 3);
        let cfg = args.engine_config();
        assert_eq!(cfg.cell_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(cfg.retry.max_retries, 3);
        assert_eq!(cfg.retry.base_backoff, Duration::from_millis(10));
        assert_eq!(
            cfg.checkpoint.as_deref(),
            Some(Path::new("results/sweep.jsonl"))
        );
        assert_eq!(
            cfg.resume.as_deref(),
            Some(Path::new("results/sweep.jsonl"))
        );
        assert!(cfg.faults.is_none());
    }

    #[test]
    fn cell_timeout_must_be_positive() {
        for bad in ["0", "-1", "nan"] {
            let err = parse(&["--cell-timeout", bad]).unwrap_err();
            assert!(err.contains("--cell-timeout"), "{bad}: {err}");
        }
    }

    #[test]
    fn validate_paths_rejects_unwritable_and_missing() {
        let dir = std::env::temp_dir().join(format!("lockbind-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");

        // Writable output path passes and leaves no probe litter behind.
        let mut args = parse(&[]).unwrap();
        args.json = Some(dir.join("out/metrics.json"));
        args.validate_paths().expect("writable");
        assert!(!dir.join("out/metrics.json").exists());

        // An output path whose parent is a *file* cannot be created.
        std::fs::write(dir.join("blocker"), "x").expect("write");
        let mut args = parse(&[]).unwrap();
        args.trace = Some(dir.join("blocker/trace.json"));
        let err = args.validate_paths().unwrap_err();
        assert!(err.contains("--trace"), "{err}");

        // --resume must point at an existing file.
        let mut args = parse(&[]).unwrap();
        args.resume = Some(dir.join("no-such-checkpoint.jsonl"));
        let err = args.validate_paths().unwrap_err();
        assert!(err.contains("--resume"), "{err}");
    }

    #[test]
    fn usage_mentions_every_flag() {
        let usage = EngineArgs::usage("fig4");
        for flag in [
            "--frames",
            "--seed",
            "--threads",
            "--json",
            "--fail-fast",
            "--trace",
            "--profile",
            "--cell-timeout",
            "--retries",
            "--retry-backoff-ms",
            "--checkpoint",
            "--resume",
            "--check",
            "--no-check",
            "--audit",
            "--no-audit",
        ] {
            assert!(usage.contains(flag), "usage is missing {flag}: {usage}");
        }
    }
}
