//! Shared command-line parsing for the figure binaries.
//!
//! All engine-backed binaries accept the same surface:
//!
//! ```text
//! <bin> [FRAMES] [SEED] [--frames N] [--seed S] [--threads N]
//!       [--json PATH] [--fail-fast] [--trace PATH] [--profile]
//! ```
//!
//! The two positionals predate the engine (`fig4 300 2021`) and remain
//! supported; flags win when both are given.
//!
//! `--trace PATH` writes a chrome://tracing-compatible span trace,
//! `--profile` prints a per-stage profile table to stderr at exit; both
//! are serviced by [`EngineArgs::obs_session`] /
//! [`ObsSession::finish`], which every figure binary calls around its
//! engine runs.

use std::path::PathBuf;
use std::time::Instant;

use lockbind_obs as obs;

use crate::pool::EngineConfig;

/// Parsed engine-binary arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineArgs {
    /// Profiling frames per kernel.
    pub frames: usize,
    /// Root seed (kernel preparation and per-cell streams).
    pub seed: u64,
    /// Worker threads; `0` = auto-detect.
    pub threads: usize,
    /// Where to write the run-metrics JSON, if anywhere.
    pub json: Option<PathBuf>,
    /// Abort the grid on the first failed cell.
    pub fail_fast: bool,
    /// Where to write the chrome://tracing span trace, if anywhere.
    pub trace: Option<PathBuf>,
    /// Print a per-stage profile table at end of run.
    pub profile: bool,
}

impl EngineArgs {
    /// Defaults shared by the paper binaries: 300 frames, seed 2021.
    pub fn paper_defaults() -> Self {
        EngineArgs {
            frames: 300,
            seed: 2021,
            threads: 0,
            json: None,
            fail_fast: false,
            trace: None,
            profile: false,
        }
    }

    /// Parses `std::env::args`, exiting with usage on a parse error.
    pub fn parse(bin: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1), Self::paper_defaults()) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{bin}: {message}");
                eprintln!("{}", Self::usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Usage string for `bin`.
    pub fn usage(bin: &str) -> String {
        format!(
            "usage: {bin} [FRAMES] [SEED] [--frames N] [--seed S] [--threads N] [--json PATH] [--fail-fast] [--trace PATH] [--profile]"
        )
    }

    /// Parses an explicit argument iterator against `defaults`.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags, missing flag
    /// values, unparsable numbers, or extra positionals.
    pub fn parse_from(
        args: impl Iterator<Item = String>,
        defaults: EngineArgs,
    ) -> Result<Self, String> {
        let mut out = defaults;
        let mut positionals = 0usize;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--frames" => out.frames = parse_num(&value_for("--frames")?, "--frames")?,
                "--seed" => out.seed = parse_num(&value_for("--seed")?, "--seed")?,
                "--threads" => out.threads = parse_num(&value_for("--threads")?, "--threads")?,
                "--json" => out.json = Some(PathBuf::from(value_for("--json")?)),
                "--fail-fast" => out.fail_fast = true,
                "--trace" => out.trace = Some(PathBuf::from(value_for("--trace")?)),
                "--profile" => out.profile = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                positional => {
                    match positionals {
                        0 => out.frames = parse_num(positional, "FRAMES")?,
                        1 => out.seed = parse_num(positional, "SEED")?,
                        _ => return Err(format!("unexpected argument {positional}")),
                    }
                    positionals += 1;
                }
            }
        }
        Ok(out)
    }

    /// The [`EngineConfig`] these arguments describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            root_seed: self.seed,
            fail_fast: self.fail_fast,
            progress: true,
        }
    }

    /// Starts an observability session for this invocation: when `--trace`
    /// or `--profile` was given, enables span collection and timers and
    /// snapshots the metrics registry. Call **before** creating the engine
    /// and [`ObsSession::finish`] after the last run; the session may span
    /// several `Engine::run` calls (e.g. `ablation`).
    pub fn obs_session(&self) -> ObsSession {
        let enabled = self.trace.is_some() || self.profile;
        let collector = if enabled {
            obs::set_profiling(true);
            Some(obs::install_collector())
        } else {
            None
        };
        ObsSession {
            trace: self.trace.clone(),
            profile: self.profile,
            collector,
            before: obs::Registry::global().snapshot(),
            started: Instant::now(),
        }
    }
}

/// An in-flight observability session: holds the span collector and the
/// pre-run registry snapshot backing `--trace` / `--profile`.
pub struct ObsSession {
    trace: Option<PathBuf>,
    profile: bool,
    collector: Option<std::sync::Arc<obs::CollectingSink>>,
    before: obs::MetricsSnapshot,
    started: Instant,
}

impl ObsSession {
    /// Finishes the session: writes the chrome trace (if `--trace`) and
    /// prints the per-stage profile table to stderr (if `--profile`).
    /// A no-op when neither flag was given.
    ///
    /// # Errors
    /// Propagates trace-file write errors.
    pub fn finish(self) -> std::io::Result<()> {
        let Some(collector) = self.collector else {
            return Ok(());
        };
        let spans = collector.drain_sorted();
        obs::trace::set_sink(None);
        if let Some(path) = &self.trace {
            obs::write_chrome_trace(path, &spans)?;
            eprintln!(
                "[obs] {} spans written to {} (open in chrome://tracing or ui.perfetto.dev)",
                spans.len(),
                path.display()
            );
        }
        if self.profile {
            let delta = obs::Registry::global().snapshot().delta_from(&self.before);
            eprintln!(
                "{}",
                obs::render_profile(&spans, &delta, self.started.elapsed())
            );
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{what}: invalid number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<EngineArgs, String> {
        EngineArgs::parse_from(
            args.iter().map(|s| s.to_string()),
            EngineArgs::paper_defaults(),
        )
    }

    #[test]
    fn defaults_match_paper() {
        let args = parse(&[]).unwrap();
        assert_eq!((args.frames, args.seed, args.threads), (300, 2021, 0));
        assert!(args.json.is_none());
        assert!(!args.fail_fast);
        assert!(args.trace.is_none());
        assert!(!args.profile);
    }

    #[test]
    fn positionals_are_frames_then_seed() {
        let args = parse(&["120", "7"]).unwrap();
        assert_eq!((args.frames, args.seed), (120, 7));
        assert!(parse(&["120", "7", "9"]).is_err());
    }

    #[test]
    fn flags_parse_and_win() {
        let args = parse(&[
            "100",
            "--threads",
            "4",
            "--seed",
            "99",
            "--json",
            "results/run.json",
            "--fail-fast",
            "--trace",
            "trace.json",
            "--profile",
        ])
        .unwrap();
        assert_eq!(args.frames, 100);
        assert_eq!(args.seed, 99);
        assert_eq!(args.threads, 4);
        assert_eq!(
            args.json.as_deref(),
            Some(std::path::Path::new("results/run.json"))
        );
        assert!(args.fail_fast);
        assert_eq!(
            args.trace.as_deref(),
            Some(std::path::Path::new("trace.json"))
        );
        assert!(args.profile);
    }

    #[test]
    fn trace_flag_requires_a_path() {
        assert!(parse(&["--trace"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn disabled_session_finishes_without_side_effects() {
        let args = parse(&[]).unwrap();
        let session = args.obs_session();
        assert!(!lockbind_obs::tracing_enabled());
        session.finish().unwrap();
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--threads"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["abc"]).unwrap_err().contains("invalid number"));
    }
}
