//! Run metrics: wall time, throughput, per-stage/per-cell timing, cache
//! effectiveness, and the observability-registry delta — plus a
//! hand-rolled JSON export.
//!
//! The JSON schema is versioned (`schema_version`). Version 2 added
//! `cells_skipped` (fail-fast skips, previously lumped into
//! `cells_failed`) and the `obs` object carrying the per-run counter /
//! gauge / histogram / timer aggregates from the `lockbind-obs` registry.
//! Version 3 added the resilience counters `cells_timed_out` (deadline
//! cancellations, split out of `cells_failed`), `cells_retried` (total
//! retry attempts spent), and `cells_resumed` (cells spliced in from a
//! checkpoint); all earlier fields are unchanged.
//! Version 4 added the artifact-check fields `cells_check_failed` (failed
//! cells whose message carries the `lockbind-check` failure prefix — a
//! subset of `cells_failed`) and the `check_codes` object mapping each
//! `LBxxxx` diagnostic code to its occurrence count across failure
//! messages; all earlier fields are unchanged.
//! Version 5 added the `serve` object ([`ServeAggregates`]): request
//! aggregates derived from the `serve.*` counters the `lockbind-serve`
//! daemon records on the obs registry — all zeros for batch (figure / CLI)
//! runs; all earlier fields are unchanged.
//! Version 6 added the `audit` object ([`AuditAggregates`]): LB07xx
//! structural-security findings derived from the `audit.*` counters the
//! `lockbind-check` audit passes record on the obs registry — all zeros
//! unless the run enabled the audit (`--audit`); all earlier fields are
//! unchanged.

use std::time::Duration;

use lockbind_obs::MetricsSnapshot;

use crate::cache::CacheStats;
use crate::json::Json;

/// JSON schema version written by [`RunMetrics::to_json`].
pub const METRICS_SCHEMA_VERSION: u64 = 6;

/// Request aggregates recorded by the serve daemon on the obs registry,
/// one counter per terminal response status plus the coalescing count.
/// Derived from the run's obs delta by [`ServeAggregates::from_obs`], so a
/// batch run (no daemon) reports all zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeAggregates {
    /// Requests read off the wire (every kind, before validation).
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered `error` (validation or execution failure).
    pub errors: u64,
    /// Requests shed by admission control (queue/tenant bounds, drain).
    pub shed: u64,
    /// Requests whose deadline fired (queued or executing).
    pub deadline_exceeded: u64,
    /// Requests cancelled explicitly mid-flight.
    pub interrupted: u64,
    /// Work requests answered from another request's in-flight or cached
    /// build (response-level single-flight).
    pub coalesced: u64,
    /// Live telemetry snapshot (the `lockbind-telemetry` hub's JSON
    /// document), attached by the daemon via
    /// [`with_telemetry`](Self::with_telemetry). `None` for batch runs —
    /// and omitted from [`to_json`](Self::to_json) when `None`, so the
    /// committed batch metrics goldens are unchanged by its existence.
    pub telemetry: Option<Json>,
}

impl ServeAggregates {
    /// Counter name: requests read off the wire.
    pub const REQUESTS: &'static str = "serve.requests";
    /// Counter name: `ok` responses.
    pub const OK: &'static str = "serve.ok";
    /// Counter name: `error` responses.
    pub const ERRORS: &'static str = "serve.error";
    /// Counter name: `shed` responses.
    pub const SHED: &'static str = "serve.shed";
    /// Counter name: `deadline_exceeded` responses.
    pub const DEADLINE_EXCEEDED: &'static str = "serve.deadline_exceeded";
    /// Counter name: `interrupted` responses.
    pub const INTERRUPTED: &'static str = "serve.interrupted";
    /// Counter name: coalesced work responses.
    pub const COALESCED: &'static str = "serve.coalesced";

    /// Pulls the `serve.*` aggregates out of an obs snapshot (typically a
    /// per-run delta). Unknown `serve.*` counters are ignored; missing
    /// ones read as zero.
    pub fn from_obs(obs: &MetricsSnapshot) -> Self {
        let get = |name: &str| obs.counters.get(name).copied().unwrap_or(0);
        ServeAggregates {
            requests: get(Self::REQUESTS),
            ok: get(Self::OK),
            errors: get(Self::ERRORS),
            shed: get(Self::SHED),
            deadline_exceeded: get(Self::DEADLINE_EXCEEDED),
            interrupted: get(Self::INTERRUPTED),
            coalesced: get(Self::COALESCED),
            telemetry: None,
        }
    }

    /// Attaches a live telemetry snapshot document (the serve daemon's
    /// `introspect` body) to the aggregates.
    #[must_use]
    pub fn with_telemetry(mut self, snapshot: Json) -> Self {
        self.telemetry = Some(snapshot);
        self
    }

    /// `true` when no serve activity was recorded (batch runs).
    pub fn is_empty(&self) -> bool {
        *self == ServeAggregates::default()
    }

    /// The aggregates as a JSON object (field order fixed; `telemetry`
    /// appears only when attached).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("error", Json::from(self.errors)),
            ("shed", Json::from(self.shed)),
            ("deadline_exceeded", Json::from(self.deadline_exceeded)),
            ("interrupted", Json::from(self.interrupted)),
            ("coalesced", Json::from(self.coalesced)),
        ];
        if let Some(telemetry) = &self.telemetry {
            fields.push(("telemetry", telemetry.clone()));
        }
        Json::obj(fields)
    }
}

/// LB07xx structural-audit aggregates recorded by the `lockbind-check`
/// audit passes on the obs registry. Derived from the run's obs delta by
/// [`AuditAggregates::from_obs`], so a run without `--audit` reports all
/// zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditAggregates {
    /// Locked netlists audited.
    pub netlists: u64,
    /// Findings emitted, at any severity.
    pub findings: u64,
    /// Error-severity findings (structural security defects).
    pub errors: u64,
    /// Warning-severity findings (leakage scorecard entries).
    pub warnings: u64,
    /// Per-code finding counts (`LBxxxx` → count), sorted by code. Pulled
    /// from the `audit.code.*` counter namespace.
    pub codes: Vec<(String, u64)>,
}

impl AuditAggregates {
    /// Counter name: netlists audited.
    pub const NETLISTS: &'static str = "audit.netlists";
    /// Counter name: findings at any severity.
    pub const FINDINGS: &'static str = "audit.findings";
    /// Counter name: error-severity findings.
    pub const ERRORS: &'static str = "audit.errors";
    /// Counter name: warning-severity findings.
    pub const WARNINGS: &'static str = "audit.warnings";
    /// Prefix of the per-code counters (`audit.code.LB0704` etc.).
    pub const CODE_PREFIX: &'static str = "audit.code.";

    /// Pulls the `audit.*` aggregates out of an obs snapshot (typically a
    /// per-run delta). Missing counters read as zero; every counter under
    /// [`CODE_PREFIX`](Self::CODE_PREFIX) becomes a per-code entry.
    pub fn from_obs(obs: &MetricsSnapshot) -> Self {
        let get = |name: &str| obs.counters.get(name).copied().unwrap_or(0);
        let mut codes: Vec<(String, u64)> = obs
            .counters
            .iter()
            .filter_map(|(name, count)| {
                name.strip_prefix(Self::CODE_PREFIX)
                    .map(|code| (code.to_string(), *count))
            })
            .collect();
        codes.sort();
        AuditAggregates {
            netlists: get(Self::NETLISTS),
            findings: get(Self::FINDINGS),
            errors: get(Self::ERRORS),
            warnings: get(Self::WARNINGS),
            codes,
        }
    }

    /// `true` when no audit activity was recorded (runs without `--audit`).
    pub fn is_empty(&self) -> bool {
        *self == AuditAggregates::default()
    }

    /// The aggregates as a JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("netlists", Json::from(self.netlists)),
            ("findings", Json::from(self.findings)),
            ("errors", Json::from(self.errors)),
            ("warnings", Json::from(self.warnings)),
            (
                "codes",
                Json::obj(
                    self.codes
                        .iter()
                        .map(|(code, count)| (code.as_str(), Json::from(*count))),
                ),
            ),
        ])
    }
}

impl CacheStats {
    /// The stats accumulated *since* `earlier` (the cache is shared across
    /// runs, so per-run metrics subtract the pre-run snapshot).
    pub fn delta_from(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// Wall time of one cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Cell label.
    pub cell: String,
    /// The cell's stage name.
    pub stage: String,
    /// Wall time of the cell body (including cache lookups/builds).
    pub wall: Duration,
}

/// Aggregated wall time of one stage across all its cells.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Stage name.
    pub stage: String,
    /// Cells executed in this stage.
    pub cells: usize,
    /// Summed cell wall time (CPU-side; overlaps across workers).
    pub wall: Duration,
}

/// Everything measured during one [`crate::Engine::run`].
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Worker threads actually used.
    pub threads: usize,
    /// Root seed the per-cell streams were split from.
    pub root_seed: u64,
    /// Cells submitted.
    pub cells_total: usize,
    /// Cells that completed.
    pub cells_ok: usize,
    /// Cells that failed (error or panic); excludes fail-fast skips and
    /// deadline timeouts.
    pub cells_failed: usize,
    /// Cells never started because fail-fast aborted the run.
    pub cells_skipped: usize,
    /// Cells cancelled by the per-cell deadline.
    pub cells_timed_out: usize,
    /// Total retry attempts spent across all cells.
    pub cells_retried: usize,
    /// Cells restored from a resume checkpoint instead of executed.
    pub cells_resumed: usize,
    /// Failed cells rejected by the `lockbind-check` pass suite (their
    /// message starts with the check-failure prefix) — a subset of
    /// [`cells_failed`](Self::cells_failed).
    pub cells_check_failed: usize,
    /// `LBxxxx` diagnostic codes extracted from check-failure messages,
    /// with occurrence counts, sorted by code.
    pub check_codes: Vec<(String, usize)>,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Executed cells per wall-clock second.
    pub cells_per_sec: f64,
    /// Artifact-cache activity during this run.
    pub cache: CacheStats,
    /// Per-stage aggregation.
    pub stages: Vec<StageMetrics>,
    /// Per-cell timings, in cell order (executed cells only).
    pub cells: Vec<CellTiming>,
    /// Observability-registry activity during this run (counters, gauges,
    /// histograms, timers).
    pub obs: MetricsSnapshot,
    /// Serve-daemon request aggregates from the run's `serve.*` counters
    /// (all zeros for batch runs).
    pub serve: ServeAggregates,
    /// LB07xx structural-audit aggregates from the run's `audit.*`
    /// counters (all zeros unless the run enabled the audit).
    pub audit: AuditAggregates,
}

impl RunMetrics {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        threads: usize,
        root_seed: u64,
        cells_total: usize,
        cells_ok: usize,
        cells_skipped: usize,
        cells_timed_out: usize,
        cells_retried: usize,
        cells_resumed: usize,
        cells_check_failed: usize,
        check_codes: Vec<(String, usize)>,
        wall: Duration,
        cache: CacheStats,
        stage_acc: Vec<(&'static str, usize, Duration)>,
        cells: Vec<CellTiming>,
        obs: MetricsSnapshot,
    ) -> Self {
        let executed = cells.len();
        let cells_per_sec = if wall.as_secs_f64() > 0.0 {
            executed as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let serve = ServeAggregates::from_obs(&obs);
        let audit = AuditAggregates::from_obs(&obs);
        RunMetrics {
            threads,
            root_seed,
            cells_total,
            cells_ok,
            cells_failed: cells_total - cells_ok - cells_skipped - cells_timed_out,
            cells_skipped,
            cells_timed_out,
            cells_retried,
            cells_resumed,
            cells_check_failed,
            check_codes,
            wall,
            cells_per_sec,
            cache,
            stages: stage_acc
                .into_iter()
                .map(|(stage, cells, wall)| StageMetrics {
                    stage: stage.to_string(),
                    cells,
                    wall,
                })
                .collect(),
            cells,
            obs,
            serve,
            audit,
        }
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        let skipped = if self.cells_skipped > 0 {
            format!(", {} skipped", self.cells_skipped)
        } else {
            String::new()
        };
        let timed_out = if self.cells_timed_out > 0 {
            format!(", {} timed out", self.cells_timed_out)
        } else {
            String::new()
        };
        let resumed = if self.cells_resumed > 0 {
            format!(", {} resumed", self.cells_resumed)
        } else {
            String::new()
        };
        let check_failed = if self.cells_check_failed > 0 {
            format!(", {} check-failed", self.cells_check_failed)
        } else {
            String::new()
        };
        format!(
            "{} cells ({} ok, {} failed{check_failed}{skipped}{timed_out}{resumed}) in {:.2}s on {} threads | {:.1} cells/s | cache {}h/{}m ({:.0}% hit)",
            self.cells_total,
            self.cells_ok,
            self.cells_failed,
            self.wall.as_secs_f64(),
            self.threads,
            self.cells_per_sec,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        )
    }

    /// The full metrics tree as JSON (schema version
    /// [`METRICS_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(METRICS_SCHEMA_VERSION)),
            ("threads", Json::from(self.threads)),
            ("root_seed", Json::from(self.root_seed)),
            ("cells_total", Json::from(self.cells_total)),
            ("cells_ok", Json::from(self.cells_ok)),
            ("cells_failed", Json::from(self.cells_failed)),
            ("cells_skipped", Json::from(self.cells_skipped)),
            ("cells_timed_out", Json::from(self.cells_timed_out)),
            ("cells_retried", Json::from(self.cells_retried)),
            ("cells_resumed", Json::from(self.cells_resumed)),
            ("cells_check_failed", Json::from(self.cells_check_failed)),
            (
                "check_codes",
                Json::obj(
                    self.check_codes
                        .iter()
                        .map(|(code, count)| (code.as_str(), Json::from(*count))),
                ),
            ),
            ("wall_seconds", Json::from(self.wall.as_secs_f64())),
            ("cells_per_sec", Json::from(self.cells_per_sec)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(self.cache.hits)),
                    ("misses", Json::from(self.cache.misses)),
                    ("entries", Json::from(self.cache.entries)),
                    ("hit_rate", Json::from(self.cache.hit_rate())),
                ]),
            ),
            (
                "stages",
                Json::arr(self.stages.iter().map(|s| {
                    Json::obj([
                        ("stage", Json::from(s.stage.as_str())),
                        ("cells", Json::from(s.cells)),
                        ("wall_seconds", Json::from(s.wall.as_secs_f64())),
                    ])
                })),
            ),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    Json::obj([
                        ("cell", Json::from(c.cell.as_str())),
                        ("stage", Json::from(c.stage.as_str())),
                        ("wall_seconds", Json::from(c.wall.as_secs_f64())),
                    ])
                })),
            ),
            ("serve", self.serve.to_json()),
            ("audit", self.audit.to_json()),
            ("obs", self.obs.to_json()),
        ])
    }

    /// Writes the JSON export to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_json_cover_counters() {
        let mut obs = MetricsSnapshot::default();
        obs.counters.insert("matching.solves".to_string(), 123);
        let metrics = RunMetrics::new(
            4,
            2021,
            10,
            9,
            0,
            0,
            0,
            0,
            1,
            vec![("LB0304".to_string(), 2)],
            Duration::from_millis(500),
            CacheStats {
                hits: 30,
                misses: 10,
                entries: 10,
            },
            vec![("error-cell", 10, Duration::from_millis(450))],
            vec![CellTiming {
                cell: "fir/add/1x1".to_string(),
                stage: "error-cell".to_string(),
                wall: Duration::from_millis(45),
            }],
            obs,
        );
        assert_eq!(metrics.cells_failed, 1);
        assert_eq!(metrics.cells_skipped, 0);
        assert!((metrics.cells_per_sec - 2.0).abs() < 1e-9);
        let summary = metrics.summary();
        assert!(summary.contains("9 ok"), "{summary}");
        assert!(summary.contains("75% hit"), "{summary}");
        assert!(!summary.contains("skipped"), "{summary}");
        assert!(summary.contains("1 check-failed"), "{summary}");
        let json = metrics.to_json().render();
        assert!(json.contains("\"schema_version\":6"));
        assert!(json.contains("\"cells_check_failed\":1"));
        assert!(json.contains("\"check_codes\":{\"LB0304\":2}"));
        assert!(json.contains("\"root_seed\":2021"));
        assert!(json.contains("\"hit_rate\":0.75"));
        assert!(json.contains("\"stage\":\"error-cell\""));
        assert!(json.contains("\"matching.solves\":123"));
        assert!(
            json.contains(
                "\"serve\":{\"requests\":0,\"ok\":0,\"error\":0,\"shed\":0,\
                 \"deadline_exceeded\":0,\"interrupted\":0,\"coalesced\":0}"
            ),
            "batch runs export all-zero serve aggregates: {json}"
        );
        assert!(
            json.contains(
                "\"audit\":{\"netlists\":0,\"findings\":0,\"errors\":0,\
                 \"warnings\":0,\"codes\":{}}"
            ),
            "non-audit runs export all-zero audit aggregates: {json}"
        );
    }

    #[test]
    fn audit_aggregates_read_the_audit_namespace() {
        let mut obs = MetricsSnapshot::default();
        obs.counters
            .insert(AuditAggregates::NETLISTS.to_string(), 5);
        obs.counters
            .insert(AuditAggregates::FINDINGS.to_string(), 9);
        obs.counters
            .insert(AuditAggregates::WARNINGS.to_string(), 9);
        obs.counters.insert("audit.code.LB0721".to_string(), 3);
        obs.counters.insert("audit.code.LB0704".to_string(), 6);
        obs.counters.insert("audit.unrelated".to_string(), 99);
        let agg = AuditAggregates::from_obs(&obs);
        assert_eq!(agg.netlists, 5);
        assert_eq!(agg.findings, 9);
        assert_eq!(agg.errors, 0, "missing counters read as zero");
        assert_eq!(agg.warnings, 9);
        assert_eq!(
            agg.codes,
            vec![("LB0704".to_string(), 6), ("LB0721".to_string(), 3)],
            "codes are sorted"
        );
        assert!(!agg.is_empty());
        assert!(AuditAggregates::default().is_empty());
        assert_eq!(
            agg.to_json().render(),
            "{\"netlists\":5,\"findings\":9,\"errors\":0,\"warnings\":9,\
             \"codes\":{\"LB0704\":6,\"LB0721\":3}}"
        );
    }

    #[test]
    fn serve_aggregates_read_the_serve_namespace() {
        let mut obs = MetricsSnapshot::default();
        obs.counters
            .insert(ServeAggregates::REQUESTS.to_string(), 40);
        obs.counters.insert(ServeAggregates::OK.to_string(), 30);
        obs.counters.insert(ServeAggregates::SHED.to_string(), 6);
        obs.counters
            .insert(ServeAggregates::DEADLINE_EXCEEDED.to_string(), 2);
        obs.counters
            .insert(ServeAggregates::INTERRUPTED.to_string(), 1);
        obs.counters
            .insert(ServeAggregates::COALESCED.to_string(), 12);
        obs.counters.insert("serve.unrelated".to_string(), 99);
        let agg = ServeAggregates::from_obs(&obs);
        assert_eq!(agg.requests, 40);
        assert_eq!(agg.ok, 30);
        assert_eq!(agg.errors, 0, "missing counters read as zero");
        assert_eq!(agg.shed, 6);
        assert_eq!(agg.deadline_exceeded, 2);
        assert_eq!(agg.interrupted, 1);
        assert_eq!(agg.coalesced, 12);
        assert!(!agg.is_empty());
        assert!(ServeAggregates::default().is_empty());
        assert_eq!(
            agg.to_json().render(),
            "{\"requests\":40,\"ok\":30,\"error\":0,\"shed\":6,\
             \"deadline_exceeded\":2,\"interrupted\":1,\"coalesced\":12}"
        );
    }

    #[test]
    fn telemetry_attachment_is_optional_and_order_stable() {
        let base = ServeAggregates::default();
        assert!(
            !base.to_json().render().contains("telemetry"),
            "batch aggregates must not grow a telemetry key"
        );
        let with = base
            .clone()
            .with_telemetry(Json::obj([("uptime_us", Json::from(5u64))]));
        assert!(!with.is_empty(), "an attached snapshot is serve activity");
        assert_eq!(
            with.to_json().render(),
            "{\"requests\":0,\"ok\":0,\"error\":0,\"shed\":0,\"deadline_exceeded\":0,\
             \"interrupted\":0,\"coalesced\":0,\"telemetry\":{\"uptime_us\":5}}"
        );
    }

    #[test]
    fn skipped_cells_are_split_out_of_failures() {
        let metrics = RunMetrics::new(
            2,
            7,
            10,
            4,
            5,
            0,
            0,
            0,
            0,
            Vec::new(),
            Duration::from_millis(100),
            CacheStats::default(),
            Vec::new(),
            Vec::new(),
            MetricsSnapshot::default(),
        );
        assert_eq!(metrics.cells_failed, 1, "skips are not failures");
        assert_eq!(metrics.cells_skipped, 5);
        let summary = metrics.summary();
        assert!(summary.contains("1 failed, 5 skipped"), "{summary}");
        let json = metrics.to_json().render();
        assert!(json.contains("\"cells_skipped\":5"), "{json}");
    }

    #[test]
    fn cache_delta_subtracts_snapshot() {
        let before = CacheStats {
            hits: 5,
            misses: 3,
            entries: 3,
        };
        let after = CacheStats {
            hits: 25,
            misses: 4,
            entries: 4,
        };
        let delta = after.delta_from(before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (20, 1, 4));
    }
}
