//! Parallel experiment-execution engine for the lockbind evaluation suite.
//!
//! The paper's figures are grids of independent *cells* (kernel x FU class x
//! locking configuration x algorithm set). This crate runs any such grid on a
//! worker pool with:
//!
//! * **Determinism** — per-cell RNGs are derived from one root seed via
//!   ChaCha stream splitting (stream id = cell index), so results are
//!   bit-identical to a serial run at any worker count.
//! * **Artifact caching** — a content-keyed, type-erased in-memory cache
//!   ([`ArtifactCache`]) memoizes expensive locking-independent artifacts
//!   (prepared kernels, candidate lists) across cells, with hit/miss
//!   counters.
//! * **Panic isolation** — each cell runs under `catch_unwind`; a panicking
//!   or erroring cell becomes [`CellResult::Failed`] without taking down the
//!   run (opt out with fail-fast).
//! * **Observability** — per-cell and per-stage wall time, cells/sec, cache
//!   hit rate, and a live progress line; exportable as hand-rolled JSON
//!   ([`RunMetrics::to_json`]). Each cell additionally runs inside a
//!   `lockbind-obs` span/cell scope, and the shared CLI's `--trace` /
//!   `--profile` flags ([`EngineArgs::obs_session`]) export a
//!   chrome://tracing trace and a per-stage profile table for any figure
//!   binary.
//!
//! * **Artifact checking** — the shared CLI's `--check` / `--no-check`
//!   flags (on by default in debug builds) ask check-aware jobs to lint
//!   their final artifacts with `lockbind-check`; rejected cells fail with
//!   a [`CHECK_FAILURE_PREFIX`]-prefixed message and are broken out in the
//!   run metrics (`cells_check_failed`, per-`LBxxxx`-code counts).
//! * **Resilience** — opt-in per-cell deadlines backed by cooperative
//!   [`CancelToken`](lockbind_resil::CancelToken)s ([`JobCtx::cancel`]),
//!   deterministic retry-with-backoff (attempt-indexed RNG streams), sweep
//!   checkpoint/resume (fingerprinted JSON-lines, [`checkpoint`]), and a
//!   seed-driven fault-injection plan
//!   ([`FaultPlan`](lockbind_resil::FaultPlan)) to drill all of the above.
//!
//! The engine is experiment-agnostic: anything implementing [`Job`] can be
//! scheduled. The concrete cell types live in `lockbind-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod cli;
pub mod json;
pub mod metrics;
pub mod pool;

pub use cache::{ArtifactCache, CacheKey, CacheStats};
pub use checkpoint::{CheckpointEntry, CHECKPOINT_SCHEMA};
pub use cli::{EngineArgs, ObsSession};
pub use json::Json;
pub use metrics::{
    AuditAggregates, CellTiming, RunMetrics, ServeAggregates, StageMetrics, METRICS_SCHEMA_VERSION,
};
pub use pool::{CellResult, Engine, EngineConfig, Job, JobCtx, RunReport, CHECK_FAILURE_PREFIX};
