//! Deterministic worker pool with panic isolation, cell deadlines, retry,
//! and checkpoint/resume.
//!
//! Jobs are claimed from a shared atomic index and their results stored back
//! by job index, so the *assignment* of jobs to threads is racy but the
//! *output* is not: the result vector is always in job order, and each job's
//! RNG depends only on `(root_seed, job_index, attempt)` — never on which
//! worker ran it or when. Running with 1 thread and with N threads therefore
//! produces bit-identical results.
//!
//! Each job body runs under [`std::panic::catch_unwind`]; a panic or an
//! `Err` return becomes [`CellResult::Failed`] for that cell only. With
//! [`EngineConfig::fail_fast`] the pool instead stops claiming new cells
//! after the first failure and marks the unstarted remainder as skipped —
//! skips are counted separately from failures (`cells_skipped`, plus the
//! `cells.skipped` registry counter and an `engine.fail_fast_abort`
//! instant event), so an aborted sweep is distinguishable from a short one.
//!
//! Resilience knobs, all off by default:
//!
//! * **Cell deadlines** ([`EngineConfig::cell_timeout`]) — every attempt
//!   gets a fresh [`CancelToken`] with the configured deadline, exposed as
//!   [`JobCtx::cancel`]. Cancel-aware jobs (the SAT solver's conflict loop,
//!   the co-design enumerations) unwind cooperatively; the cell becomes
//!   [`CellResult::TimedOut`] without poisoning its neighbours. Timeouts
//!   are not retried — a deterministic job that hit its deadline once will
//!   hit it again.
//! * **Retry with backoff** ([`EngineConfig::retry`]) — an erroring or
//!   panicking cell is re-attempted up to `max_retries` times with
//!   exponential backoff. Each attempt reseeds deterministically
//!   (ChaCha stream `index + (attempt << 32)`), so attempt 0 reproduces
//!   the retry-free run bit for bit and a transient fault's recovery value
//!   is the same at any worker count.
//! * **Checkpoint/resume** ([`EngineConfig::checkpoint`] /
//!   [`EngineConfig::resume`]) — completed cells whose job implements
//!   [`Job::encode_output`] are appended (flushed per cell) to a JSON-lines
//!   file fingerprinted against the grid; resuming splices them back in job
//!   order and only runs the remainder. See [`crate::checkpoint`].
//! * **Fault injection** ([`EngineConfig::faults`]) — a deterministic
//!   [`FaultPlan`] lets tests inject panics, errors, delays, and hangs at
//!   the engine boundary (plus [`FaultKind::CacheBuild`] surfaced via
//!   [`JobCtx::fault`] for cooperating jobs) to prove the knobs above
//!   compose.
//!
//! Each cell executes inside an `lockbind-obs` [`CellScope`] and a span
//! named by its [`Job::stage`], tagged with the cell index and worker id;
//! traces therefore merge deterministically by cell order at any worker
//! count. The run metrics include the observability-registry delta for the
//! run.
//!
//! [`CellScope`]: lockbind_obs::CellScope

use std::io::IsTerminal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lockbind_obs as obs;
use lockbind_resil::{CancelToken, FaultKind, FaultPlan, RetryPolicy};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::cache::ArtifactCache;
use crate::checkpoint::{self, CheckpointWriter};
use crate::metrics::{CellTiming, RunMetrics};

/// Message prefix that marks a failed cell as an artifact-check failure.
///
/// Matches `lockbind_check::CHECK_FAILURE_PREFIX` (kept as a string literal
/// so the engine does not depend on the check crate): cells that fail with
/// this prefix are counted in [`RunMetrics::cells_check_failed`], and every
/// `[LBxxxx]` code in the message feeds the per-code breakdown.
pub const CHECK_FAILURE_PREFIX: &str = "check failed: ";

/// One schedulable experiment cell.
///
/// Implementations must be pure up to their [`JobCtx`]: the output may
/// depend on the job's own fields, the per-cell RNG/seed, and cached
/// artifacts, but not on global mutable state — that is what makes the
/// parallel run equal to the serial one.
pub trait Job: Send + Sync {
    /// The cell's result payload.
    type Output: Send + 'static;

    /// Human-readable cell label (used in failures, timings, progress).
    fn label(&self) -> String;

    /// Coarse stage name for per-stage metrics aggregation.
    fn stage(&self) -> &'static str {
        "run"
    }

    /// Runs the cell. `Err` (and panics, caught by the pool) become
    /// [`CellResult::Failed`]. Long-running bodies should poll
    /// [`JobCtx::cancel`] (or hand it to cancel-aware callees) so cell
    /// deadlines terminate them cooperatively.
    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String>;

    /// Serializes a completed output for the sweep checkpoint. `None`
    /// (the default) opts this job out of checkpointing — it simply
    /// re-runs on resume.
    fn encode_output(&self, _output: &Self::Output) -> Option<String> {
        None
    }

    /// Parses a payload previously written by
    /// [`encode_output`](Self::encode_output). `None` discards the
    /// checkpoint entry and re-runs the cell.
    fn decode_output(&self, _payload: &str) -> Option<Self::Output> {
        None
    }
}

/// Per-cell execution context handed to [`Job::run`].
pub struct JobCtx<'a> {
    /// Index of this cell in the submitted job slice.
    pub index: usize,
    /// Which attempt this is (0 = first run, 1 = first retry, ...).
    pub attempt: u32,
    /// Per-cell seed: the first output of this cell's ChaCha stream. Use it
    /// to seed experiment-local generators that must not depend on worker
    /// count or scheduling order.
    pub seed: u64,
    /// Per-cell RNG: ChaCha12 seeded from the root seed with
    /// `stream = index + (attempt << 32)`, positioned after the
    /// [`seed`](Self::seed) draw. Attempt 0 reproduces the retry-free
    /// stream exactly.
    pub rng: ChaCha12Rng,
    /// Shared artifact cache.
    pub cache: &'a ArtifactCache,
    /// Cancel token for this attempt; fires at the configured cell
    /// deadline (or never, when no deadline is set). Cancel-aware job
    /// bodies poll it or pass it down to cancellable callees.
    pub cancel: CancelToken,
    /// Fault the engine's [`FaultPlan`] selected for this attempt, if any.
    /// Panic/error/delay/hang faults are applied by the engine before the
    /// job body runs; [`FaultKind::CacheBuild`] is left here for
    /// cooperating jobs to feed into their cache builders.
    pub fault: Option<FaultKind>,
    /// Whether the run asked for artifact checking
    /// ([`EngineConfig::check`]). Check-aware jobs lint their final
    /// artifacts with `lockbind-check` and fail the cell with a
    /// [`CHECK_FAILURE_PREFIX`]-prefixed message on diagnostics.
    pub check: bool,
    /// Whether the run asked for the LB07xx structural-security audit
    /// ([`EngineConfig::audit`]). Audit-aware jobs run
    /// `lockbind-check`'s audit passes over their locked netlists; the
    /// findings feed the `audit.*` obs counters (and thus
    /// `RunMetrics.audit`) without ever failing a cell, so enabling the
    /// audit cannot perturb cell outputs.
    pub audit: bool,
}

impl<'a> JobCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        index: usize,
        attempt: u32,
        root_seed: u64,
        cache: &'a ArtifactCache,
        cancel: CancelToken,
        fault: Option<FaultKind>,
        check: bool,
        audit: bool,
    ) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(root_seed);
        rng.set_stream(index as u64 + (u64::from(attempt) << 32));
        let seed = rng.next_u64();
        JobCtx {
            index,
            attempt,
            seed,
            rng,
            cache,
            cancel,
            fault,
            check,
            audit,
        }
    }
}

/// Outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult<T> {
    /// The cell completed.
    Ok {
        /// Cell label.
        cell: String,
        /// The cell's payload.
        output: T,
    },
    /// The cell returned an error, panicked, or was skipped by fail-fast.
    Failed {
        /// Cell label.
        cell: String,
        /// Error or panic message.
        message: String,
    },
    /// The cell's deadline fired before it finished; the attempt was
    /// cancelled cooperatively. Counted separately from failures and
    /// never retried.
    TimedOut {
        /// Cell label.
        cell: String,
        /// What the interrupted attempt reported.
        message: String,
    },
}

impl<T> CellResult<T> {
    /// The payload, if the cell completed.
    pub fn output(&self) -> Option<&T> {
        match self {
            CellResult::Ok { output, .. } => Some(output),
            _ => None,
        }
    }

    /// The `(cell, message)` pair, if the cell failed (timeouts excluded).
    pub fn failure(&self) -> Option<(&str, &str)> {
        match self {
            CellResult::Failed { cell, message } => Some((cell, message)),
            _ => None,
        }
    }

    /// The `(cell, message)` pair, if the cell hit its deadline.
    pub fn timeout(&self) -> Option<(&str, &str)> {
        match self {
            CellResult::TimedOut { cell, message } => Some((cell, message)),
            _ => None,
        }
    }
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` auto-detects from available parallelism.
    pub threads: usize,
    /// Root seed all per-cell streams are split from.
    pub root_seed: u64,
    /// Stop claiming new cells after the first failure.
    pub fail_fast: bool,
    /// Emit a live `done/total` progress line to stderr (suppressed when
    /// stderr is not a terminal).
    pub progress: bool,
    /// Per-attempt cell deadline; `None` disables deadlines.
    pub cell_timeout: Option<Duration>,
    /// Retry policy for erroring/panicking cells (timeouts are never
    /// retried). [`RetryPolicy::none`] disables retries.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan, for tests and fault drills.
    pub faults: Option<FaultPlan>,
    /// Where to append completed cells as a resumable checkpoint.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint file to resume from; fingerprint-mismatching files are
    /// ignored with a warning (the run proceeds from scratch).
    pub resume: Option<PathBuf>,
    /// Ask check-aware jobs to lint their artifacts with `lockbind-check`
    /// (surfaced as [`JobCtx::check`]). Check failures are ordinary cell
    /// failures with a [`CHECK_FAILURE_PREFIX`]-prefixed message, counted
    /// separately in [`RunMetrics::cells_check_failed`].
    pub check: bool,
    /// Ask audit-aware jobs to run the LB07xx structural-security audit
    /// over their locked netlists (surfaced as [`JobCtx::audit`]).
    /// Findings only feed `audit.*` run metrics; they never fail cells.
    pub audit: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            root_seed: 0,
            fail_fast: false,
            progress: true,
            cell_timeout: None,
            retry: RetryPolicy::none(),
            faults: None,
            checkpoint: None,
            resume: None,
            check: false,
            audit: false,
        }
    }
}

impl EngineConfig {
    /// The effective worker count after auto-detection.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Everything a run produced: in-order cell results plus metrics.
#[derive(Debug)]
pub struct RunReport<T> {
    /// One result per submitted job, in submission order.
    pub results: Vec<CellResult<T>>,
    /// Timing, throughput, and cache statistics for the run.
    pub metrics: RunMetrics,
}

impl<T> RunReport<T> {
    /// Iterates over the completed cells' payloads, in submission order.
    pub fn outputs(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(CellResult::output)
    }

    /// Iterates over `(cell, message)` pairs of failed cells.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str)> {
        self.results.iter().filter_map(CellResult::failure)
    }

    /// Iterates over `(cell, message)` pairs of timed-out cells.
    pub fn timeouts(&self) -> impl Iterator<Item = (&str, &str)> {
        self.results.iter().filter_map(CellResult::timeout)
    }
}

/// A completed cell as the workers hand it back: job index, result, stage
/// name, and wall time (across all attempts).
type Finished<T> = (usize, CellResult<T>, &'static str, Duration);

/// The experiment-execution engine: a config plus a shared artifact cache
/// that persists across [`Engine::run`] calls.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
    cache: ArtifactCache,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            cache: ArtifactCache::new(),
        }
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Runs a single job outside a grid sweep, on the caller's thread,
    /// against the engine's shared artifact cache — the execution path of
    /// the serve daemon, where each network request is one job.
    ///
    /// Unlike [`Engine::run`], the caller supplies the RNG `root_seed` and
    /// the [`CancelToken`] directly: the daemon derives the seed from the
    /// request *content* so identical requests replay identical ChaCha
    /// streams (the job context is always built at `index = 0`,
    /// `attempt = 0`), and the token carries the request's deadline so a
    /// fired deadline classifies as [`CellResult::TimedOut`] exactly like
    /// a sweep cell's `--cell-timeout`. `request` and `worker` only tag
    /// the cell scope for span capture; they never feed the RNG.
    ///
    /// The body runs under `catch_unwind` (panic isolation), with no
    /// fault injection and no retries — single requests are interactive,
    /// so transient-failure policy belongs to the caller.
    pub fn run_one<J: Job>(
        &self,
        job: &J,
        request: u64,
        worker: u64,
        root_seed: u64,
        cancel: CancelToken,
    ) -> CellResult<J::Output> {
        let cell = job.label();
        let mut ctx = JobCtx::new(
            0,
            0,
            root_seed,
            &self.cache,
            cancel.clone(),
            None,
            self.cfg.check,
            self.cfg.audit,
        );
        let outcome = {
            let _cell_scope = obs::CellScope::enter(request, worker);
            let _span = obs::span!(job.stage(), cell = cell.as_str(), request = request);
            catch_unwind(AssertUnwindSafe(|| job.run(&mut ctx)))
        };
        let message = match outcome {
            Ok(Ok(output)) => return CellResult::Ok { cell, output },
            Ok(Err(message)) => message,
            Err(payload) => panic_message(payload.as_ref()),
        };
        if cancel.deadline_exceeded() {
            return CellResult::TimedOut {
                cell,
                message: format!("deadline exceeded: {message}"),
            };
        }
        CellResult::Failed { cell, message }
    }

    /// Runs every job and returns in-order results plus run metrics.
    pub fn run<J: Job>(&self, jobs: &[J]) -> RunReport<J::Output> {
        let show_progress = self.cfg.progress && std::io::stderr().is_terminal();
        let cache_before = self.cache.stats();
        let obs_before = obs::Registry::global().snapshot();

        // Checkpoint identity and resume splicing happen before any worker
        // starts: resumed cells never enter the claimable set.
        let labels: Vec<String> = jobs.iter().map(Job::label).collect();
        let grid_fp = checkpoint::fingerprint(self.cfg.root_seed, &labels);
        let mut resumed: Vec<Option<J::Output>> = (0..jobs.len()).map(|_| None).collect();
        let mut cells_resumed = 0usize;
        if let Some(path) = &self.cfg.resume {
            match checkpoint::load(path, grid_fp) {
                Ok(entries) => {
                    for entry in entries {
                        let Some(slot) = resumed.get_mut(entry.cell) else {
                            continue;
                        };
                        if slot.is_none() {
                            if let Some(output) = jobs[entry.cell].decode_output(&entry.payload) {
                                *slot = Some(output);
                                cells_resumed += 1;
                            }
                        }
                    }
                }
                Err(message) => {
                    eprintln!("[engine] ignoring resume checkpoint: {message}");
                }
            }
        }
        if cells_resumed > 0 {
            obs::counter!("cells.resumed").add(cells_resumed as u64);
        }
        let writer = self.cfg.checkpoint.as_ref().and_then(|path| {
            let resuming = self.cfg.resume.as_deref() == Some(path.as_path());
            match CheckpointWriter::open(path, grid_fp, self.cfg.root_seed, jobs.len(), resuming) {
                Ok(writer) => Some(writer),
                Err(e) => {
                    eprintln!(
                        "[engine] checkpointing disabled: cannot open {}: {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        if let Some(writer) = &writer {
            // A fresh checkpoint file must still be complete: re-encode
            // cells spliced in from a *different* resume file.
            if !writer.appended() {
                for (index, output) in resumed.iter().enumerate() {
                    if let Some(output) = output {
                        if let Some(payload) = jobs[index].encode_output(output) {
                            let _ = writer.append(index, &labels[index], &payload);
                        }
                    }
                }
            }
        }

        let pending: Vec<usize> = (0..jobs.len()).filter(|&i| resumed[i].is_none()).collect();
        let threads = self.cfg.effective_threads().min(pending.len().max(1));

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        let retried = AtomicUsize::new(0);
        let timed_out = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let collected: Mutex<Vec<Finished<J::Output>>> =
            Mutex::new(Vec::with_capacity(pending.len()));

        let started = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (next, done, failed, abort) = (&next, &done, &failed, &abort);
                let (retried, timed_out) = (&retried, &timed_out);
                let (collected, cache, cfg) = (&collected, &self.cache, &self.cfg);
                let (pending, labels, writer) = (&pending, &labels, writer.as_ref());
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = pending.get(slot) else {
                        break;
                    };
                    let job = &jobs[index];
                    let cell = labels[index].as_str();
                    let stage = job.stage();
                    let cell_start = Instant::now();
                    let result = run_cell(job, index, cell, worker, cache, cfg, retried);
                    let wall = cell_start.elapsed();
                    match &result {
                        CellResult::Ok { output, .. } => {
                            if let (Some(writer), Some(payload)) =
                                (writer, job.encode_output(output))
                            {
                                if let Err(e) = writer.append(index, cell, &payload) {
                                    eprintln!("[engine] checkpoint append failed: {e}");
                                }
                            }
                        }
                        CellResult::TimedOut { .. } => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                            obs::counter!("cells.timed_out").inc();
                            if cfg.fail_fast {
                                abort.store(true, Ordering::Relaxed);
                            }
                        }
                        CellResult::Failed { .. } => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            if cfg.fail_fast {
                                abort.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    collected
                        .lock()
                        .expect("result sink poisoned")
                        .push((index, result, stage, wall));
                    if show_progress {
                        eprint!(
                            "\r[engine] {finished}/{} cells | {} failed ",
                            pending.len(),
                            failed.load(Ordering::Relaxed)
                        );
                    }
                });
            }
        });
        let wall = started.elapsed();
        if show_progress {
            eprintln!();
        }

        // Reassemble in job order: resumed cells first, then the workers'
        // results; fail-fast leaves unclaimed cells, which surface as
        // explicit skips rather than silently missing rows.
        let mut slots: Vec<Option<CellResult<J::Output>>> = resumed
            .into_iter()
            .enumerate()
            .map(|(index, output)| {
                output.map(|output| CellResult::Ok {
                    cell: labels[index].clone(),
                    output,
                })
            })
            .collect();
        let mut timings = Vec::with_capacity(pending.len());
        let mut stage_acc: Vec<(&'static str, usize, Duration)> = Vec::new();
        let mut collected = collected.into_inner().expect("result sink poisoned");
        collected.sort_by_key(|(index, ..)| *index);
        for (index, result, stage, cell_wall) in collected {
            timings.push(CellTiming {
                cell: labels[index].clone(),
                stage: stage.to_string(),
                wall: cell_wall,
            });
            match stage_acc.iter_mut().find(|(name, ..)| *name == stage) {
                Some((_, cells, total)) => {
                    *cells += 1;
                    *total += cell_wall;
                }
                None => stage_acc.push((stage, 1, cell_wall)),
            }
            slots[index] = Some(result);
        }
        let mut skipped = 0usize;
        let results: Vec<CellResult<J::Output>> = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    skipped += 1;
                    CellResult::Failed {
                        cell: labels[index].clone(),
                        message: "skipped: fail-fast after an earlier failure".to_string(),
                    }
                })
            })
            .collect();
        if skipped > 0 {
            obs::counter!("cells.skipped").add(skipped as u64);
            obs::trace::instant("engine.fail_fast_abort", || {
                vec![("skipped", obs::ArgValue::from(skipped))]
            });
        }

        let cells_ok = results
            .iter()
            .filter(|r| matches!(r, CellResult::Ok { .. }))
            .count();
        // Check-failure accounting: failed cells carrying the check prefix
        // are lint rejections; their [LBxxxx] codes feed the per-code
        // breakdown. Derived from the in-order results, so the counts are
        // identical at any worker count.
        let mut cells_check_failed = 0usize;
        let mut check_codes: Vec<(String, usize)> = Vec::new();
        for (_, message) in results.iter().filter_map(CellResult::failure) {
            let Some(rest) = message.strip_prefix(CHECK_FAILURE_PREFIX) else {
                continue;
            };
            cells_check_failed += 1;
            for code in check_codes_in(rest) {
                match check_codes.iter_mut().find(|(c, _)| c.as_str() == code) {
                    Some((_, count)) => *count += 1,
                    None => check_codes.push((code.to_string(), 1)),
                }
            }
        }
        check_codes.sort();
        if cells_check_failed > 0 {
            obs::counter!("cells.check_failed").add(cells_check_failed as u64);
        }
        let metrics = RunMetrics::new(
            threads,
            self.cfg.root_seed,
            results.len(),
            cells_ok,
            skipped,
            timed_out.load(Ordering::Relaxed),
            retried.load(Ordering::Relaxed),
            cells_resumed,
            cells_check_failed,
            check_codes,
            wall,
            self.cache.stats().delta_from(cache_before),
            stage_acc,
            timings,
            obs::Registry::global().snapshot().delta_from(&obs_before),
        );
        RunReport { results, metrics }
    }
}

/// Runs one cell to a final [`CellResult`]: attempt loop with fault
/// injection, deadline classification, and retry-with-backoff.
fn run_cell<J: Job>(
    job: &J,
    index: usize,
    cell: &str,
    worker: usize,
    cache: &ArtifactCache,
    cfg: &EngineConfig,
    retried: &AtomicUsize,
) -> CellResult<J::Output> {
    let mut attempt = 0u32;
    loop {
        let cancel = match cfg.cell_timeout {
            Some(limit) => CancelToken::with_deadline(limit),
            None => CancelToken::new(),
        };
        let fault = cfg
            .faults
            .as_ref()
            .and_then(|plan| plan.action_for(index, attempt));
        let mut ctx = JobCtx::new(
            index,
            attempt,
            cfg.root_seed,
            cache,
            cancel.clone(),
            fault,
            cfg.check,
            cfg.audit,
        );
        let outcome = {
            let _cell_scope = obs::CellScope::enter(index as u64, worker as u64);
            let _span = obs::span!(job.stage(), cell = cell, worker = worker);
            catch_unwind(AssertUnwindSafe(|| {
                apply_fault(&mut ctx)?;
                job.run(&mut ctx)
            }))
        };
        let message = match outcome {
            Ok(Ok(output)) => {
                return CellResult::Ok {
                    cell: cell.to_string(),
                    output,
                }
            }
            Ok(Err(message)) => message,
            Err(payload) => panic_message(payload.as_ref()),
        };
        // A fired deadline means the error/panic is (directly or not) the
        // cooperative unwind — classify as a timeout and do not retry: the
        // job is deterministic, the next attempt would time out too.
        if cancel.deadline_exceeded() {
            return CellResult::TimedOut {
                cell: cell.to_string(),
                message: format!(
                    "deadline {:?} exceeded on attempt {attempt}: {message}",
                    cfg.cell_timeout.unwrap_or_default()
                ),
            };
        }
        if attempt >= cfg.retry.max_retries {
            return CellResult::Failed {
                cell: cell.to_string(),
                message,
            };
        }
        retried.fetch_add(1, Ordering::Relaxed);
        obs::counter!("cells.retried").inc();
        std::thread::sleep(cfg.retry.backoff_for(attempt));
        attempt += 1;
    }
}

/// Applies the attempt's injected fault, if any. Panics, errors, delays,
/// and hangs are enacted here; [`FaultKind::CacheBuild`] is left on the
/// context for cooperating jobs.
fn apply_fault(ctx: &mut JobCtx<'_>) -> Result<(), String> {
    let (index, attempt) = (ctx.index, ctx.attempt);
    match &ctx.fault {
        // Cache faults belong to cooperating jobs; disk faults belong to
        // the `lockbind-durable` writers. Neither is enacted at the cell
        // boundary.
        None
        | Some(
            FaultKind::CacheBuild
            | FaultKind::ShortWrite
            | FaultKind::TornWrite(_)
            | FaultKind::FsyncError
            | FaultKind::BitFlip,
        ) => Ok(()),
        Some(FaultKind::Error) => Err(format!(
            "injected fault: error (cell {index}, attempt {attempt})"
        )),
        Some(FaultKind::Panic) => {
            panic!("injected fault: panic (cell {index}, attempt {attempt})")
        }
        Some(FaultKind::Delay(pause)) => {
            std::thread::sleep(*pause);
            Ok(())
        }
        Some(FaultKind::Hang) => loop {
            // Simulates a stuck cell that still polls its cancel token —
            // only a cell deadline (or external cancel) gets us out.
            if ctx.cancel.is_cancelled() {
                return Err(format!(
                    "injected fault: hang cancelled (cell {index}, attempt {attempt})"
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        },
    }
}

/// Extracts the `LBxxxx` diagnostic codes from a check-failure message
/// (the `[LB0304] ...; [LB0202] ...` format of a check report's failure
/// summary). Tolerant of arbitrary surrounding text; non-`LBnnnn` brackets
/// are ignored.
fn check_codes_in(message: &str) -> Vec<&str> {
    let mut codes = Vec::new();
    let mut rest = message;
    while let Some(start) = rest.find("[LB") {
        rest = &rest[start + 1..];
        let Some(end) = rest.find(']') else { break };
        let code = &rest[..end];
        if code.len() == 6 && code[2..].bytes().all(|b| b.is_ascii_digit()) {
            codes.push(code);
        }
        rest = &rest[end..];
    }
    codes
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_resil::FaultRule;

    /// A toy job whose output depends on its RNG — detects any seed-stream
    /// coupling between cells.
    struct RngJob {
        id: usize,
    }

    impl Job for RngJob {
        type Output = (u64, u64);

        fn label(&self) -> String {
            format!("rng-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
            Ok((ctx.seed, ctx.rng.next_u64()))
        }

        fn encode_output(&self, output: &Self::Output) -> Option<String> {
            Some(format!("{} {}", output.0, output.1))
        }

        fn decode_output(&self, payload: &str) -> Option<Self::Output> {
            let (a, b) = payload.split_once(' ')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        }
    }

    fn run_with_threads(threads: usize) -> Vec<CellResult<(u64, u64)>> {
        let jobs: Vec<RngJob> = (0..24).map(|id| RngJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads,
            root_seed: 0x0DAC_2021,
            progress: false,
            ..EngineConfig::default()
        });
        engine.run(&jobs).results
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = run_with_threads(1);
        for threads in [2, 4, 7] {
            assert_eq!(run_with_threads(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn cell_seeds_are_distinct_streams() {
        let results = run_with_threads(1);
        let mut seeds: Vec<u64> = results.iter().map(|r| r.output().expect("ok").0).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 24, "per-cell seeds must be pairwise distinct");
    }

    struct FaultyJob {
        id: usize,
    }

    impl Job for FaultyJob {
        type Output = usize;

        fn label(&self) -> String {
            format!("cell-{}", self.id)
        }

        fn run(&self, _ctx: &mut JobCtx<'_>) -> Result<usize, String> {
            match self.id {
                3 => panic!("injected panic in cell 3"),
                5 => Err("injected error".to_string()),
                id => Ok(id * 10),
            }
        }
    }

    #[test]
    fn failures_are_isolated() {
        let jobs: Vec<FaultyJob> = (0..8).map(|id| FaultyJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 4,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        assert_eq!(report.results.len(), 8);
        let failures: Vec<(&str, &str)> = report.failures().collect();
        assert_eq!(failures.len(), 2);
        assert!(failures
            .iter()
            .any(|(c, m)| *c == "cell-3" && m.contains("injected panic")));
        assert!(failures
            .iter()
            .any(|(c, m)| *c == "cell-5" && m.contains("injected error")));
        // Every other cell still completed with its own output.
        for (id, result) in report.results.iter().enumerate() {
            if id != 3 && id != 5 {
                assert_eq!(result.output(), Some(&(id * 10)));
            }
        }
        assert_eq!(report.metrics.cells_ok, 6);
        assert_eq!(report.metrics.cells_failed, 2);
    }

    #[test]
    fn run_one_seeds_from_content_not_request_tags() {
        let engine = Engine::new(EngineConfig {
            progress: false,
            ..EngineConfig::default()
        });
        let job = RngJob { id: 0 };
        let a = engine.run_one(&job, 1, 0, 0xFEED, CancelToken::new());
        let b = engine.run_one(&job, 99, 7, 0xFEED, CancelToken::new());
        assert_eq!(a, b, "request/worker tags must not feed the RNG");
        let c = engine.run_one(&job, 1, 0, 0xFEED + 1, CancelToken::new());
        assert_ne!(a.output(), c.output(), "the seed must feed the RNG");
    }

    #[test]
    fn run_one_isolates_panics_and_classifies_deadlines() {
        let engine = Engine::new(EngineConfig {
            progress: false,
            ..EngineConfig::default()
        });
        let panicky = FaultyJob { id: 3 };
        let result = engine.run_one(&panicky, 0, 0, 1, CancelToken::new());
        let (cell, message) = result.failure().expect("panic becomes Failed");
        assert_eq!(cell, "cell-3");
        assert!(message.contains("injected panic"), "{message}");

        struct Cooperative;
        impl Job for Cooperative {
            type Output = ();
            fn label(&self) -> String {
                "coop".to_string()
            }
            fn run(&self, ctx: &mut JobCtx<'_>) -> Result<(), String> {
                while !ctx.cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err("interrupted".to_string())
            }
        }
        let expired = CancelToken::with_deadline(Duration::from_millis(5));
        let result = engine.run_one(&Cooperative, 0, 0, 1, expired);
        assert!(result.timeout().is_some(), "fired deadline => TimedOut");

        let token = CancelToken::new();
        token.cancel();
        let result = engine.run_one(&Cooperative, 0, 0, 1, token);
        assert!(
            result.failure().is_some(),
            "explicit cancel stays a plain failure; the caller maps it via the token reason"
        );
    }

    #[test]
    fn fail_fast_skips_remaining_cells() {
        let jobs: Vec<FaultyJob> = (0..64).map(|id| FaultyJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 1,
            fail_fast: true,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        assert_eq!(report.results.len(), 64, "every cell has a result row");
        assert!(report.failures().any(|(_, m)| m.contains("injected panic")));
        assert!(report.failures().any(|(_, m)| m.contains("fail-fast")));
        assert!(report.metrics.cells_ok < 64);
        // Skips are accounted separately from real failures: with one
        // worker, cells 0..3 ran (3 failed), everything after was skipped.
        assert_eq!(report.metrics.cells_failed, 1);
        assert_eq!(report.metrics.cells_skipped, 60);
        assert_eq!(
            report.metrics.cells_ok + report.metrics.cells_failed + report.metrics.cells_skipped,
            64
        );
    }

    #[test]
    fn metrics_track_stage_and_throughput() {
        let jobs: Vec<RngJob> = (0..6).map(|id| RngJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 2,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        let m = &report.metrics;
        assert_eq!(m.cells_total, 6);
        assert_eq!(m.cells_ok, 6);
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].stage, "run");
        assert_eq!(m.stages[0].cells, 6);
        assert_eq!(m.cells.len(), 6);
        assert!(m.cells_per_sec > 0.0);
        // JSON export is well-formed enough to contain the headline fields.
        let json = m.to_json().render();
        assert!(json.contains("\"cells_total\":6"));
        assert!(json.contains("\"cache\""));
    }

    /// Hangs forever on the chosen cell unless the cancel token fires.
    struct HangingJob {
        id: usize,
        hang_on: usize,
    }

    impl Job for HangingJob {
        type Output = usize;

        fn label(&self) -> String {
            format!("hang-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<usize, String> {
            if self.id == self.hang_on {
                loop {
                    if ctx.cancel.is_cancelled() {
                        return Err("cancelled while hung".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok(self.id)
        }
    }

    #[test]
    fn deadline_turns_a_hung_cell_into_timed_out() {
        let jobs: Vec<HangingJob> = (0..6).map(|id| HangingJob { id, hang_on: 2 }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 3,
            progress: false,
            cell_timeout: Some(Duration::from_millis(50)),
            ..EngineConfig::default()
        });
        let started = Instant::now();
        let report = engine.run(&jobs);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the hung cell must be bounded by the deadline"
        );
        let timeouts: Vec<(&str, &str)> = report.timeouts().collect();
        assert_eq!(timeouts.len(), 1);
        assert_eq!(timeouts[0].0, "hang-2");
        assert!(timeouts[0].1.contains("deadline"), "{}", timeouts[0].1);
        // The hang poisoned nothing else.
        assert_eq!(report.metrics.cells_ok, 5);
        assert_eq!(report.metrics.cells_failed, 0);
        assert_eq!(report.metrics.cells_timed_out, 1);
    }

    /// Fails deterministically on the first N attempts of one cell, then
    /// succeeds — exercises retry without any wall-clock dependence.
    struct FlakyJob {
        id: usize,
        flaky_cell: usize,
        fail_attempts: u32,
    }

    impl Job for FlakyJob {
        type Output = (u64, u32);

        fn label(&self) -> String {
            format!("flaky-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
            if self.id == self.flaky_cell && ctx.attempt < self.fail_attempts {
                return Err(format!("transient failure on attempt {}", ctx.attempt));
            }
            Ok((ctx.seed, ctx.attempt))
        }
    }

    #[test]
    fn transient_failures_are_retried_deterministically() {
        let run = |threads: usize| {
            let jobs: Vec<FlakyJob> = (0..8)
                .map(|id| FlakyJob {
                    id,
                    flaky_cell: 4,
                    fail_attempts: 2,
                })
                .collect();
            let engine = Engine::new(EngineConfig {
                threads,
                root_seed: 99,
                progress: false,
                retry: RetryPolicy::new(3, Duration::from_millis(1)),
                ..EngineConfig::default()
            });
            engine.run(&jobs)
        };
        let serial = run(1);
        assert_eq!(serial.metrics.cells_ok, 8);
        assert_eq!(serial.metrics.cells_retried, 2);
        let (seed, attempt) = serial.results[4].output().expect("recovered");
        assert_eq!(*attempt, 2, "succeeded on the second retry");
        // The retry attempt reseeds its own ChaCha stream.
        let (seed0, _) = serial.results[0].output().expect("ok");
        assert_ne!(seed, seed0);
        for threads in [4, 7] {
            assert_eq!(run(threads).results, serial.results, "threads = {threads}");
        }
    }

    #[test]
    fn retries_exhausted_fail_the_cell() {
        let jobs = vec![FlakyJob {
            id: 0,
            flaky_cell: 0,
            fail_attempts: 10,
        }];
        let engine = Engine::new(EngineConfig {
            threads: 1,
            progress: false,
            retry: RetryPolicy::new(2, Duration::from_millis(1)),
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        assert_eq!(report.metrics.cells_failed, 1);
        assert_eq!(report.metrics.cells_retried, 2);
        let (_, message) = report.failures().next().expect("failed");
        assert!(message.contains("attempt 2"), "{message}");
    }

    #[test]
    fn injected_faults_are_deterministic_and_retryable() {
        // max_attempt = 1: the fault fires on attempt 0 only, so one
        // retry always cures it.
        let faults =
            FaultPlan::new(11).rule(FaultRule::at_cells(FaultKind::Error, vec![1, 3]).transient(1));
        let run = |threads: usize| {
            let jobs: Vec<RngJob> = (0..6).map(|id| RngJob { id }).collect();
            let engine = Engine::new(EngineConfig {
                threads,
                root_seed: 5,
                progress: false,
                retry: RetryPolicy::new(1, Duration::from_millis(1)),
                faults: Some(faults.clone()),
                ..EngineConfig::default()
            });
            engine.run(&jobs)
        };
        let serial = run(1);
        assert_eq!(serial.metrics.cells_ok, 6, "transient faults recover");
        assert_eq!(serial.metrics.cells_retried, 2);
        for threads in [4, 7] {
            assert_eq!(run(threads).results, serial.results, "threads = {threads}");
        }
    }

    /// Requests `key = id % 3` from the shared cache; a
    /// [`FaultKind::CacheBuild`] fault makes this cell's build panic.
    struct CacheJob {
        id: usize,
    }

    impl Job for CacheJob {
        type Output = u64;

        fn label(&self) -> String {
            format!("cache-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<u64, String> {
            let poisoned = matches!(ctx.fault, Some(FaultKind::CacheBuild));
            let key = crate::cache::CacheKey::new("shared").push_u64((self.id % 3) as u64);
            let value = ctx.cache.get_or_insert_with::<u64, _>(key, || {
                if poisoned {
                    panic!("injected cache-build failure");
                }
                (self.id % 3) as u64 * 100
            });
            Ok(*value)
        }
    }

    #[test]
    fn cache_build_failures_keep_counters_deterministic() {
        // Cells 0/3/6/9 all request key 0 and each injects a build
        // failure, so key 0 never materializes: every requester builds
        // exactly once (4 misses), fails its own cell, and leaves the
        // other keys untouched. Single-flight makes the counters exact at
        // any worker count.
        let faults =
            FaultPlan::new(0).rule(FaultRule::at_cells(FaultKind::CacheBuild, vec![0, 3, 6, 9]));
        let run = |threads: usize| {
            let jobs: Vec<CacheJob> = (0..12).map(|id| CacheJob { id }).collect();
            let engine = Engine::new(EngineConfig {
                threads,
                root_seed: 1,
                progress: false,
                faults: Some(faults.clone()),
                ..EngineConfig::default()
            });
            engine.run(&jobs)
        };
        let serial = run(1);
        assert_eq!(serial.metrics.cells_ok, 8);
        assert_eq!(serial.metrics.cells_failed, 4);
        assert_eq!(
            (serial.metrics.cache.misses, serial.metrics.cache.hits),
            (6, 6),
            "4 failed builds of key 0 + 1 build each of keys 1 and 2; the rest hit"
        );
        assert_eq!(serial.metrics.cache.entries, 2, "key 0 never materializes");
        for threads in [4, 7] {
            let report = run(threads);
            assert_eq!(report.results, serial.results, "threads = {threads}");
            assert_eq!(
                (report.metrics.cache.misses, report.metrics.cache.hits),
                (6, 6),
                "threads = {threads}"
            );
        }
    }

    fn temp_checkpoint(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lockbind-pool-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("sweep.jsonl")
    }

    #[test]
    fn checkpoint_then_resume_reproduces_the_full_run() {
        let jobs: Vec<RngJob> = (0..12).map(|id| RngJob { id }).collect();
        let path = temp_checkpoint("resume");

        let full = Engine::new(EngineConfig {
            threads: 1,
            root_seed: 7,
            progress: false,
            ..EngineConfig::default()
        })
        .run(&jobs);

        // A checkpointed run, then truncate the file to simulate a kill
        // after 5 cells, then resume.
        Engine::new(EngineConfig {
            threads: 1,
            root_seed: 7,
            progress: false,
            checkpoint: Some(path.clone()),
            ..EngineConfig::default()
        })
        .run(&jobs);
        let text = std::fs::read_to_string(&path).expect("checkpoint");
        let truncated: Vec<&str> = text.lines().take(6).collect(); // header + 5 cells
        std::fs::write(&path, truncated.join("\n") + "\n").expect("truncate");

        let resumed = Engine::new(EngineConfig {
            threads: 1,
            root_seed: 7,
            progress: false,
            checkpoint: Some(path.clone()),
            resume: Some(path.clone()),
            ..EngineConfig::default()
        })
        .run(&jobs);
        assert_eq!(resumed.metrics.cells_resumed, 5);
        assert_eq!(resumed.metrics.cells_ok, 12);
        assert_eq!(
            format!("{:?}", resumed.results),
            format!("{:?}", full.results),
            "resumed results must be bit-identical to the uninterrupted run"
        );
        // The completed checkpoint now covers every cell and resumes to a
        // fully-skipped run.
        let again = Engine::new(EngineConfig {
            threads: 4,
            root_seed: 7,
            progress: false,
            resume: Some(path),
            ..EngineConfig::default()
        })
        .run(&jobs);
        assert_eq!(again.metrics.cells_resumed, 12);
        assert_eq!(
            format!("{:?}", again.results),
            format!("{:?}", full.results)
        );
    }

    /// Fails with a check-style message on selected cells when the run has
    /// checking enabled — the shape check-aware bench cells produce.
    struct CheckyJob {
        id: usize,
    }

    impl Job for CheckyJob {
        type Output = usize;

        fn label(&self) -> String {
            format!("checky-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<usize, String> {
            if ctx.check && self.id % 3 == 0 {
                return Err(format!(
                    "{CHECK_FAILURE_PREFIX}[LB0304] cycle0/adder0: clash; \
                     [LB0202] op1->op2: backwards"
                ));
            }
            Ok(self.id)
        }
    }

    #[test]
    fn check_failures_are_classified_and_counted_per_code() {
        let jobs: Vec<CheckyJob> = (0..7).map(|id| CheckyJob { id }).collect();
        let run = |check: bool| {
            Engine::new(EngineConfig {
                threads: 2,
                progress: false,
                check,
                ..EngineConfig::default()
            })
            .run(&jobs)
        };
        let unchecked = run(false);
        assert_eq!(
            unchecked.metrics.cells_ok, 7,
            "checks off: everything passes"
        );
        assert_eq!(unchecked.metrics.cells_check_failed, 0);

        let checked = run(true);
        assert_eq!(checked.metrics.cells_ok, 4);
        assert_eq!(checked.metrics.cells_failed, 3, "cells 0, 3, 6 rejected");
        assert_eq!(checked.metrics.cells_check_failed, 3);
        assert_eq!(
            checked.metrics.check_codes,
            vec![("LB0202".to_string(), 3), ("LB0304".to_string(), 3)],
            "per-code counts are sorted and aggregated across cells"
        );
        let summary = checked.metrics.summary();
        assert!(summary.contains("3 check-failed"), "{summary}");
    }

    #[test]
    fn check_code_extraction_is_tolerant() {
        assert_eq!(
            check_codes_in("[LB0304] x; [LB0304] y (+2 more)"),
            vec!["LB0304", "LB0304"]
        );
        assert_eq!(
            check_codes_in("prefix [not-a-code] [LB12] [LB0101] tail"),
            vec!["LB0101"]
        );
        assert!(check_codes_in("no codes here").is_empty());
        assert!(check_codes_in("[LB0101 unterminated").is_empty());
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let jobs: Vec<RngJob> = (0..4).map(|id| RngJob { id }).collect();
        let path = temp_checkpoint("mismatch");
        Engine::new(EngineConfig {
            threads: 1,
            root_seed: 1,
            progress: false,
            checkpoint: Some(path.clone()),
            ..EngineConfig::default()
        })
        .run(&jobs);
        // Different root seed → different fingerprint → full re-run.
        let report = Engine::new(EngineConfig {
            threads: 1,
            root_seed: 2,
            progress: false,
            resume: Some(path),
            ..EngineConfig::default()
        })
        .run(&jobs);
        assert_eq!(report.metrics.cells_resumed, 0);
        assert_eq!(report.metrics.cells_ok, 4);
    }
}
