//! Deterministic worker pool with panic isolation.
//!
//! Jobs are claimed from a shared atomic index and their results stored back
//! by job index, so the *assignment* of jobs to threads is racy but the
//! *output* is not: the result vector is always in job order, and each job's
//! RNG depends only on `(root_seed, job_index)` — never on which worker ran
//! it or when. Running with 1 thread and with N threads therefore produces
//! bit-identical results.
//!
//! Each job body runs under [`std::panic::catch_unwind`]; a panic or an
//! `Err` return becomes [`CellResult::Failed`] for that cell only. With
//! [`EngineConfig::fail_fast`] the pool instead stops claiming new cells
//! after the first failure and marks the unstarted remainder as skipped —
//! skips are counted separately from failures (`cells_skipped`, plus the
//! `cells.skipped` registry counter and an `engine.fail_fast_abort`
//! instant event), so an aborted sweep is distinguishable from a short one.
//!
//! Each cell executes inside an `lockbind-obs` [`CellScope`] and a span
//! named by its [`Job::stage`], tagged with the cell index and worker id;
//! traces therefore merge deterministically by cell order at any worker
//! count. The run metrics include the observability-registry delta for the
//! run.
//!
//! [`CellScope`]: lockbind_obs::CellScope

use std::io::IsTerminal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lockbind_obs as obs;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::cache::ArtifactCache;
use crate::metrics::{CellTiming, RunMetrics};

/// One schedulable experiment cell.
///
/// Implementations must be pure up to their [`JobCtx`]: the output may
/// depend on the job's own fields, the per-cell RNG/seed, and cached
/// artifacts, but not on global mutable state — that is what makes the
/// parallel run equal to the serial one.
pub trait Job: Send + Sync {
    /// The cell's result payload.
    type Output: Send + 'static;

    /// Human-readable cell label (used in failures, timings, progress).
    fn label(&self) -> String;

    /// Coarse stage name for per-stage metrics aggregation.
    fn stage(&self) -> &'static str {
        "run"
    }

    /// Runs the cell. `Err` (and panics, caught by the pool) become
    /// [`CellResult::Failed`].
    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String>;
}

/// Per-cell execution context handed to [`Job::run`].
pub struct JobCtx<'a> {
    /// Index of this cell in the submitted job slice.
    pub index: usize,
    /// Per-cell seed: the first output of this cell's ChaCha stream. Use it
    /// to seed experiment-local generators that must not depend on worker
    /// count or scheduling order.
    pub seed: u64,
    /// Per-cell RNG: ChaCha12 seeded from the root seed with
    /// `stream = index`, positioned after the [`seed`](Self::seed) draw.
    pub rng: ChaCha12Rng,
    /// Shared artifact cache.
    pub cache: &'a ArtifactCache,
}

impl<'a> JobCtx<'a> {
    fn new(index: usize, root_seed: u64, cache: &'a ArtifactCache) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(root_seed);
        rng.set_stream(index as u64);
        let seed = rng.next_u64();
        JobCtx {
            index,
            seed,
            rng,
            cache,
        }
    }
}

/// Outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult<T> {
    /// The cell completed.
    Ok {
        /// Cell label.
        cell: String,
        /// The cell's payload.
        output: T,
    },
    /// The cell returned an error, panicked, or was skipped by fail-fast.
    Failed {
        /// Cell label.
        cell: String,
        /// Error or panic message.
        message: String,
    },
}

impl<T> CellResult<T> {
    /// The payload, if the cell completed.
    pub fn output(&self) -> Option<&T> {
        match self {
            CellResult::Ok { output, .. } => Some(output),
            CellResult::Failed { .. } => None,
        }
    }

    /// The `(cell, message)` pair, if the cell failed.
    pub fn failure(&self) -> Option<(&str, &str)> {
        match self {
            CellResult::Ok { .. } => None,
            CellResult::Failed { cell, message } => Some((cell, message)),
        }
    }
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` auto-detects from available parallelism.
    pub threads: usize,
    /// Root seed all per-cell streams are split from.
    pub root_seed: u64,
    /// Stop claiming new cells after the first failure.
    pub fail_fast: bool,
    /// Emit a live `done/total` progress line to stderr (suppressed when
    /// stderr is not a terminal).
    pub progress: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            root_seed: 0,
            fail_fast: false,
            progress: true,
        }
    }
}

impl EngineConfig {
    /// The effective worker count after auto-detection.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Everything a run produced: in-order cell results plus metrics.
#[derive(Debug)]
pub struct RunReport<T> {
    /// One result per submitted job, in submission order.
    pub results: Vec<CellResult<T>>,
    /// Timing, throughput, and cache statistics for the run.
    pub metrics: RunMetrics,
}

impl<T> RunReport<T> {
    /// Iterates over the completed cells' payloads, in submission order.
    pub fn outputs(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(CellResult::output)
    }

    /// Iterates over `(cell, message)` pairs of failed cells.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str)> {
        self.results.iter().filter_map(CellResult::failure)
    }
}

/// A completed cell as the workers hand it back: job index, result, stage
/// name, and wall time.
type Finished<T> = (usize, CellResult<T>, &'static str, Duration);

/// The experiment-execution engine: a config plus a shared artifact cache
/// that persists across [`Engine::run`] calls.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
    cache: ArtifactCache,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            cache: ArtifactCache::new(),
        }
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Runs every job and returns in-order results plus run metrics.
    pub fn run<J: Job>(&self, jobs: &[J]) -> RunReport<J::Output> {
        let threads = self.cfg.effective_threads().min(jobs.len().max(1));
        let show_progress = self.cfg.progress && std::io::stderr().is_terminal();
        let cache_before = self.cache.stats();
        let obs_before = obs::Registry::global().snapshot();

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let collected: Mutex<Vec<Finished<J::Output>>> = Mutex::new(Vec::with_capacity(jobs.len()));

        let started = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (next, done, failed, abort) = (&next, &done, &failed, &abort);
                let (collected, cache, cfg) = (&collected, &self.cache, &self.cfg);
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let job = &jobs[index];
                    let cell = job.label();
                    let stage = job.stage();
                    let mut ctx = JobCtx::new(index, cfg.root_seed, cache);
                    let cell_start = Instant::now();
                    let outcome = {
                        let _cell_scope = obs::CellScope::enter(index as u64, worker as u64);
                        let _span = obs::span!(stage, cell = cell.as_str(), worker = worker);
                        catch_unwind(AssertUnwindSafe(|| job.run(&mut ctx)))
                    };
                    let wall = cell_start.elapsed();
                    let result = match outcome {
                        Ok(Ok(output)) => CellResult::Ok { cell, output },
                        Ok(Err(message)) => CellResult::Failed { cell, message },
                        Err(payload) => CellResult::Failed {
                            cell,
                            message: panic_message(payload.as_ref()),
                        },
                    };
                    if matches!(result, CellResult::Failed { .. }) {
                        failed.fetch_add(1, Ordering::Relaxed);
                        if cfg.fail_fast {
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    collected
                        .lock()
                        .expect("result sink poisoned")
                        .push((index, result, stage, wall));
                    if show_progress {
                        eprint!(
                            "\r[engine] {finished}/{} cells | {} failed ",
                            jobs.len(),
                            failed.load(Ordering::Relaxed)
                        );
                    }
                });
            }
        });
        let wall = started.elapsed();
        if show_progress {
            eprintln!();
        }

        // Reassemble in job order; fail-fast leaves unclaimed cells, which
        // surface as explicit skips rather than silently missing rows.
        let mut slots: Vec<Option<CellResult<J::Output>>> = (0..jobs.len()).map(|_| None).collect();
        let mut timings = Vec::with_capacity(jobs.len());
        let mut stage_acc: Vec<(&'static str, usize, Duration)> = Vec::new();
        let mut collected = collected.into_inner().expect("result sink poisoned");
        collected.sort_by_key(|(index, ..)| *index);
        for (index, result, stage, cell_wall) in collected {
            timings.push(CellTiming {
                cell: cell_label(&result),
                stage: stage.to_string(),
                wall: cell_wall,
            });
            match stage_acc.iter_mut().find(|(name, ..)| *name == stage) {
                Some((_, cells, total)) => {
                    *cells += 1;
                    *total += cell_wall;
                }
                None => stage_acc.push((stage, 1, cell_wall)),
            }
            slots[index] = Some(result);
        }
        let mut skipped = 0usize;
        let results: Vec<CellResult<J::Output>> = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    skipped += 1;
                    CellResult::Failed {
                        cell: jobs[index].label(),
                        message: "skipped: fail-fast after an earlier failure".to_string(),
                    }
                })
            })
            .collect();
        if skipped > 0 {
            obs::counter!("cells.skipped").add(skipped as u64);
            obs::trace::instant("engine.fail_fast_abort", || {
                vec![("skipped", obs::ArgValue::from(skipped))]
            });
        }

        let cells_ok = results
            .iter()
            .filter(|r| matches!(r, CellResult::Ok { .. }))
            .count();
        let metrics = RunMetrics::new(
            threads,
            self.cfg.root_seed,
            results.len(),
            cells_ok,
            skipped,
            wall,
            self.cache.stats().delta_from(cache_before),
            stage_acc,
            timings,
            obs::Registry::global().snapshot().delta_from(&obs_before),
        );
        RunReport { results, metrics }
    }
}

fn cell_label<T>(result: &CellResult<T>) -> String {
    match result {
        CellResult::Ok { cell, .. } | CellResult::Failed { cell, .. } => cell.clone(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy job whose output depends on its RNG — detects any seed-stream
    /// coupling between cells.
    struct RngJob {
        id: usize,
    }

    impl Job for RngJob {
        type Output = (u64, u64);

        fn label(&self) -> String {
            format!("rng-{}", self.id)
        }

        fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
            Ok((ctx.seed, ctx.rng.next_u64()))
        }
    }

    fn run_with_threads(threads: usize) -> Vec<CellResult<(u64, u64)>> {
        let jobs: Vec<RngJob> = (0..24).map(|id| RngJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads,
            root_seed: 0x0DAC_2021,
            fail_fast: false,
            progress: false,
        });
        engine.run(&jobs).results
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = run_with_threads(1);
        for threads in [2, 4, 7] {
            assert_eq!(run_with_threads(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn cell_seeds_are_distinct_streams() {
        let results = run_with_threads(1);
        let mut seeds: Vec<u64> = results.iter().map(|r| r.output().expect("ok").0).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 24, "per-cell seeds must be pairwise distinct");
    }

    struct FaultyJob {
        id: usize,
    }

    impl Job for FaultyJob {
        type Output = usize;

        fn label(&self) -> String {
            format!("cell-{}", self.id)
        }

        fn run(&self, _ctx: &mut JobCtx<'_>) -> Result<usize, String> {
            match self.id {
                3 => panic!("injected panic in cell 3"),
                5 => Err("injected error".to_string()),
                id => Ok(id * 10),
            }
        }
    }

    #[test]
    fn failures_are_isolated() {
        let jobs: Vec<FaultyJob> = (0..8).map(|id| FaultyJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 4,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        assert_eq!(report.results.len(), 8);
        let failures: Vec<(&str, &str)> = report.failures().collect();
        assert_eq!(failures.len(), 2);
        assert!(failures
            .iter()
            .any(|(c, m)| *c == "cell-3" && m.contains("injected panic")));
        assert!(failures
            .iter()
            .any(|(c, m)| *c == "cell-5" && m.contains("injected error")));
        // Every other cell still completed with its own output.
        for (id, result) in report.results.iter().enumerate() {
            if id != 3 && id != 5 {
                assert_eq!(result.output(), Some(&(id * 10)));
            }
        }
        assert_eq!(report.metrics.cells_ok, 6);
        assert_eq!(report.metrics.cells_failed, 2);
    }

    #[test]
    fn fail_fast_skips_remaining_cells() {
        let jobs: Vec<FaultyJob> = (0..64).map(|id| FaultyJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 1,
            fail_fast: true,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        assert_eq!(report.results.len(), 64, "every cell has a result row");
        assert!(report.failures().any(|(_, m)| m.contains("injected panic")));
        assert!(report.failures().any(|(_, m)| m.contains("fail-fast")));
        assert!(report.metrics.cells_ok < 64);
        // Skips are accounted separately from real failures: with one
        // worker, cells 0..3 ran (3 failed), everything after was skipped.
        assert_eq!(report.metrics.cells_failed, 1);
        assert_eq!(report.metrics.cells_skipped, 60);
        assert_eq!(
            report.metrics.cells_ok + report.metrics.cells_failed + report.metrics.cells_skipped,
            64
        );
    }

    #[test]
    fn metrics_track_stage_and_throughput() {
        let jobs: Vec<RngJob> = (0..6).map(|id| RngJob { id }).collect();
        let engine = Engine::new(EngineConfig {
            threads: 2,
            progress: false,
            ..EngineConfig::default()
        });
        let report = engine.run(&jobs);
        let m = &report.metrics;
        assert_eq!(m.cells_total, 6);
        assert_eq!(m.cells_ok, 6);
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].stage, "run");
        assert_eq!(m.stages[0].cells, 6);
        assert_eq!(m.cells.len(), 6);
        assert!(m.cells_per_sec > 0.0);
        // JSON export is well-formed enough to contain the headline fields.
        let json = m.to_json().render();
        assert!(json.contains("\"cells_total\":6"));
        assert!(json.contains("\"cache\""));
    }
}
