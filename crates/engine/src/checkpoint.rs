//! Sweep checkpoint/resume: a JSON-lines file of completed cells.
//!
//! The file starts with a header line binding the checkpoint to a specific
//! grid — a [`fingerprint`] over the root seed, the cell count, and every
//! cell label — followed by one line per completed cell carrying the
//! job-encoded output payload. Appends are flushed per cell, so a run
//! killed mid-sweep leaves a loadable prefix; resuming with a file whose
//! fingerprint does not match the submitted grid is rejected (the caller
//! falls back to a full run).
//!
//! Only cells whose job implements [`crate::Job::encode_output`] are
//! written; everything else simply re-runs on resume — correct (the engine
//! is deterministic) if not maximally fast.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

use lockbind_obs as obs;
use lockbind_obs::json::Json;

/// Checkpoint file schema version (the `"schema"` header field).
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// Content fingerprint of a grid: FNV-1a over the root seed, the cell
/// count, and every length-prefixed cell label. Two grids resume-compatible
/// iff their fingerprints match.
pub fn fingerprint(root_seed: u64, labels: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&root_seed.to_le_bytes());
    eat(&(labels.len() as u64).to_le_bytes());
    for label in labels {
        eat(&(label.len() as u64).to_le_bytes());
        eat(label.as_bytes());
    }
    hash
}

/// One completed-cell record loaded from a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Cell index in the submitted job slice.
    pub cell: usize,
    /// Job-encoded output payload.
    pub payload: String,
}

/// Loads the completed-cell records of a checkpoint file.
///
/// # Errors
/// Returns a human-readable message when the file cannot be read, the
/// header is malformed, or its fingerprint does not match `expected` —
/// callers are expected to warn and fall back to a full run.
pub fn load(path: &Path, expected: u64) -> Result<Vec<CheckpointEntry>, String> {
    // A byte-level torn-tail-tolerant scan: a writer killed mid-record can
    // tear the file inside a multi-byte UTF-8 sequence, which a plain
    // line-by-line text read would report as a hard I/O error. The torn
    // fragment just means its cell re-runs; it must never fail the resume.
    let tail = lockbind_durable::tail::read_jsonl(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    if tail.torn_bytes > 0 {
        obs::counter!("checkpoint.torn_tail").inc();
        eprintln!(
            "[engine] checkpoint {} has a torn trailing record ({} bytes); ignoring it \
             (the interrupted cell will re-run)",
            path.display(),
            tail.torn_bytes
        );
    }
    let mut lines = tail.lines.into_iter();
    let header = lines
        .next()
        .ok_or_else(|| "checkpoint file is empty".to_string())?;
    let found = field_u64(&header, "fingerprint")
        .ok_or_else(|| "checkpoint header has no fingerprint".to_string())?;
    if found != expected {
        return Err(format!(
            "checkpoint fingerprint {found:#018x} does not match this grid ({expected:#018x}); \
             was it written by a different sweep?"
        ));
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue; // torn final line from a killed writer
        }
        let (Some(cell), Some(payload)) = (field_u64(&line, "cell"), field_str(&line, "payload"))
        else {
            continue; // torn/partial line: ignore, the cell just re-runs
        };
        entries.push(CheckpointEntry {
            cell: cell as usize,
            payload,
        });
    }
    Ok(entries)
}

/// Append-mode checkpoint writer shared across worker threads; every
/// [`append`](Self::append) is flushed so a kill loses at most the line
/// being written.
#[derive(Debug)]
pub(crate) struct CheckpointWriter {
    out: Mutex<BufWriter<File>>,
    appended: bool,
}

impl CheckpointWriter {
    /// Opens `path` for checkpointing a grid with the given identity.
    /// When `resuming` and the file already holds a matching header, new
    /// cells are appended after the existing ones; otherwise the file is
    /// recreated with a fresh header.
    pub(crate) fn open(
        path: &Path,
        fingerprint: u64,
        root_seed: u64,
        cells: usize,
        resuming: bool,
    ) -> std::io::Result<Self> {
        // The header probe is torn-tail tolerant for the same reason
        // `load` is: a kill can tear the file mid-UTF-8-sequence, and a
        // whole-file text read would then fail, silently demoting a
        // resumable checkpoint to a truncating rewrite (losing every
        // completed cell).
        let append = resuming
            && lockbind_durable::tail::read_jsonl(path)
                .ok()
                .and_then(|tail| field_u64(tail.lines.first().map(String::as_str)?, "fingerprint"))
                .is_some_and(|found| found == fingerprint);
        if append {
            // Continuing after a kill: drop any torn trailing fragment so
            // the next record does not concatenate with it (which would
            // corrupt both records, not just lose the torn one).
            match lockbind_durable::tail::truncate_torn_tail(path) {
                Ok(0) => {}
                Ok(removed) => {
                    obs::counter!("checkpoint.torn_tail").inc();
                    eprintln!(
                        "[engine] checkpoint {} had a torn trailing record ({removed} bytes); \
                         truncated before appending",
                        path.display()
                    );
                }
                Err(e) => {
                    eprintln!(
                        "[engine] cannot repair checkpoint tail {}: {e}",
                        path.display()
                    );
                }
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(path)?;
        let mut out = BufWriter::new(file);
        if !append {
            writeln!(
                out,
                "{}",
                Json::obj([
                    ("schema", Json::from(CHECKPOINT_SCHEMA)),
                    ("fingerprint", Json::from(fingerprint)),
                    ("root_seed", Json::from(root_seed)),
                    ("cells", Json::from(cells)),
                ])
                .render()
            )?;
            out.flush()?;
        }
        Ok(CheckpointWriter {
            out: Mutex::new(out),
            appended: append,
        })
    }

    /// `true` when the writer continued an existing matching file rather
    /// than starting a fresh one.
    pub(crate) fn appended(&self) -> bool {
        self.appended
    }

    /// Appends one completed cell and flushes.
    pub(crate) fn append(&self, cell: usize, label: &str, payload: &str) -> std::io::Result<()> {
        let line = Json::obj([
            ("cell", Json::from(cell)),
            ("label", Json::from(label)),
            ("payload", Json::from(payload)),
        ])
        .render();
        let mut out = self.out.lock().expect("checkpoint writer poisoned");
        writeln!(out, "{line}")?;
        out.flush()
    }
}

/// Extracts `"key":<u64>` from a single-line JSON object written by this
/// module (numbers are never quoted in our writer).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts and unescapes `"key":"..."` from a single-line JSON object
/// written by this module.
fn field_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lockbind-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("checkpoint.jsonl")
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("cell/{i}")).collect()
    }

    #[test]
    fn fingerprint_is_sensitive_to_seed_count_and_labels() {
        let base = fingerprint(1, &labels(3));
        assert_eq!(base, fingerprint(1, &labels(3)), "deterministic");
        assert_ne!(base, fingerprint(2, &labels(3)), "seed");
        assert_ne!(base, fingerprint(1, &labels(4)), "count");
        let mut renamed = labels(3);
        renamed[1] = "cell/renamed".to_string();
        assert_ne!(base, fingerprint(1, &renamed), "labels");
        // Length prefixes keep label boundaries unambiguous.
        assert_ne!(
            fingerprint(0, &["ab".to_string(), "c".to_string()]),
            fingerprint(0, &["a".to_string(), "bc".to_string()]),
        );
    }

    #[test]
    fn round_trips_entries_with_awkward_payloads() {
        let path = temp_path("roundtrip");
        let fp = fingerprint(7, &labels(4));
        let writer = CheckpointWriter::open(&path, fp, 7, 4, false).expect("open");
        writer.append(0, "cell/0", "plain").expect("append");
        writer
            .append(2, "cell/2", "a\x1fb\x1ec \"quoted\" \\slash\nnewline\tté")
            .expect("append");
        drop(writer);
        let entries = load(&path, fp).expect("load");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0],
            CheckpointEntry {
                cell: 0,
                payload: "plain".to_string()
            }
        );
        assert_eq!(entries[1].cell, 2);
        assert_eq!(
            entries[1].payload,
            "a\x1fb\x1ec \"quoted\" \\slash\nnewline\tté"
        );
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = temp_path("mismatch");
        let fp = fingerprint(7, &labels(4));
        let writer = CheckpointWriter::open(&path, fp, 7, 4, false).expect("open");
        writer.append(0, "cell/0", "x").expect("append");
        drop(writer);
        let err = load(&path, fp ^ 1).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = temp_path("torn");
        let fp = fingerprint(1, &labels(3));
        let writer = CheckpointWriter::open(&path, fp, 1, 3, false).expect("open");
        writer.append(0, "cell/0", "ok").expect("append");
        drop(writer);
        // Simulate a kill mid-write: truncated trailing record.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"cell\":1,\"label\":\"cell/1\",\"payl");
        std::fs::write(&path, text).expect("write");
        let entries = load(&path, fp).expect("load");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cell, 0);
    }

    #[test]
    fn torn_multibyte_tail_is_truncated_not_fatal() {
        // Regression: a kill mid-write can tear the file *inside* a
        // multi-byte UTF-8 sequence. `BufRead::lines()` reports that as an
        // I/O error, which used to fail the whole resume hard.
        let path = temp_path("torn-utf8");
        let fp = fingerprint(1, &labels(3));
        let writer = CheckpointWriter::open(&path, fp, 1, 3, false).expect("open");
        writer.append(0, "cell/0", "ok").expect("append");
        drop(writer);
        let mut bytes = std::fs::read(&path).expect("read");
        let torn = "{\"cell\":1,\"label\":\"cell/1\",\"payload\":\"té";
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() - 1]);
        std::fs::write(&path, &bytes).expect("write");
        let entries = load(&path, fp).expect("torn tail must not fail the load");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cell, 0);
    }

    #[test]
    fn resume_append_repairs_a_torn_tail_first() {
        // Regression: reopening in append mode used to write the next
        // record directly after a torn fragment, corrupting both.
        let path = temp_path("append-repair");
        let fp = fingerprint(2, &labels(4));
        let writer = CheckpointWriter::open(&path, fp, 2, 4, false).expect("open");
        writer.append(0, "cell/0", "first").expect("append");
        drop(writer);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"cell\":1,\"label\":\"cell/1\",\"payl");
        std::fs::write(&path, &bytes).expect("write");
        let writer = CheckpointWriter::open(&path, fp, 2, 4, true).expect("reopen");
        assert!(writer.appended(), "matching header despite the torn tail");
        writer.append(2, "cell/2", "second").expect("append");
        drop(writer);
        let entries = load(&path, fp).expect("load");
        assert_eq!(entries.len(), 2, "{entries:?}");
        assert_eq!((entries[0].cell, entries[1].cell), (0, 2));
        assert_eq!(entries[1].payload, "second");
    }

    #[test]
    fn resume_append_survives_a_torn_multibyte_tail() {
        // Regression: the append-mode header probe used read_to_string,
        // so an invalid-UTF-8 tear silently demoted the resume to a
        // truncating rewrite — losing every completed cell.
        let path = temp_path("append-utf8");
        let fp = fingerprint(5, &labels(3));
        let writer = CheckpointWriter::open(&path, fp, 5, 3, false).expect("open");
        writer.append(0, "cell/0", "kept").expect("append");
        drop(writer);
        let mut bytes = std::fs::read(&path).expect("read");
        let torn = "{\"payload\":\"é";
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() - 1]);
        std::fs::write(&path, &bytes).expect("write");
        let writer = CheckpointWriter::open(&path, fp, 5, 3, true).expect("reopen");
        assert!(writer.appended(), "completed cells must survive the tear");
        drop(writer);
        let entries = load(&path, fp).expect("load");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, "kept");
    }

    #[test]
    fn resuming_appends_after_a_matching_header() {
        let path = temp_path("resume-append");
        let fp = fingerprint(3, &labels(5));
        let writer = CheckpointWriter::open(&path, fp, 3, 5, false).expect("open");
        writer.append(0, "cell/0", "first").expect("append");
        drop(writer);
        let writer = CheckpointWriter::open(&path, fp, 3, 5, true).expect("reopen");
        writer.append(1, "cell/1", "second").expect("append");
        drop(writer);
        let entries = load(&path, fp).expect("load");
        assert_eq!(entries.len(), 2);
        // A non-resuming reopen starts the file over.
        let writer = CheckpointWriter::open(&path, fp, 3, 5, false).expect("truncate");
        drop(writer);
        assert!(load(&path, fp).expect("load").is_empty());
    }
}
