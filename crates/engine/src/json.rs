//! Hand-rolled JSON writer, re-exported from `lockbind-obs`.
//!
//! The writer started life here and moved to `lockbind-obs` so the
//! chrome://tracing exporter can share it; this module keeps the
//! `lockbind_engine::json::Json` / `lockbind_engine::Json` paths working.

pub use lockbind_obs::json::Json;
