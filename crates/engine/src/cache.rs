//! Content-keyed in-memory artifact cache with single-flight builds.
//!
//! Experiment cells repeatedly need the same expensive, locking-independent
//! artifacts: an HLS-scheduled kernel, its candidate minterm list, the
//! area-/power-aware baseline bindings. The cache memoizes them across cells
//! (and across worker threads) under a content key built from the inputs
//! that determine the artifact — e.g. `(kernel, frames, seed)`.
//!
//! Keys hash with FNV-1a (hand-rolled; the environment has no external
//! hashing crates), but lookup always compares the **exact key bytes**, so
//! hash collisions can never alias two artifacts. Values are type-erased
//! `Arc<dyn Any>`; [`ArtifactCache::get_or_insert_with`] downcasts back to
//! the concrete type and panics on a type mismatch (a programming error:
//! one namespace must always store one type).
//!
//! Builds are **single-flight**: the first thread to miss a key builds it
//! (without holding the cache lock) while concurrent requesters block on
//! the pending slot and then share the result. Each key is therefore built
//! *exactly once* — no duplicated work, and every counter incremented
//! inside a build fires a deterministic number of times regardless of
//! worker count, which is what keeps the metrics registry byte-identical
//! across `--threads` values. If a build panics, the panic propagates to
//! the builder, waiters retry (typically re-building and re-panicking in
//! their own cell, preserving per-cell panic isolation), and the failed
//! slot is removed.
//!
//! Hit/miss counters are kept both per-cache (for [`CacheStats`] deltas)
//! and on the global `lockbind-obs` registry (`cache.hit` / `cache.miss`),
//! so run metrics and profile output report the same numbers from one
//! source of truth.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use lockbind_obs as obs;

/// An unambiguous byte key identifying one cached artifact.
///
/// Built from a namespace plus a sequence of typed fields; variable-length
/// fields are length-prefixed so distinct field sequences can never encode
/// to the same bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    bytes: Vec<u8>,
}

impl CacheKey {
    /// Starts a key in `namespace` (e.g. `"prepared-kernel"`).
    pub fn new(namespace: &str) -> Self {
        CacheKey { bytes: Vec::new() }.push_str(namespace)
    }

    /// Appends a `u64` field.
    pub fn push_u64(mut self, v: u64) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` field.
    pub fn push_usize(self, v: usize) -> Self {
        self.push_u64(v as u64)
    }

    /// Appends a length-prefixed string field.
    pub fn push_str(self, s: &str) -> Self {
        self.push_bytes(s.as_bytes())
    }

    /// Appends a length-prefixed raw byte field.
    pub fn push_bytes(mut self, b: &[u8]) -> Self {
        self.bytes
            .extend_from_slice(&(b.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(b);
        self
    }

    /// The key's canonical byte rendering — stable across processes, so
    /// persistent stores can index by it directly.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// FNV-1a over the key bytes; used only to pick the bucket.
    fn fnv1a(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &byte in &self.bytes {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

type Erased = Arc<dyn Any + Send + Sync>;

/// Cache hit/miss counters and the current entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (including waits on an in-flight
    /// build started by another thread).
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Artifacts currently stored (completed builds).
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none occurred).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot: pending while its builder runs, then ready (or failed,
/// transiently, when the builder panicked).
#[derive(Debug)]
enum SlotState {
    Pending,
    Ready(Erased),
    Failed,
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn finish(&self, state: SlotState) {
        *self.state.lock().expect("cache slot poisoned") = state;
        self.ready.notify_all();
    }
}

/// One hash bucket: slots whose keys share an FNV-1a hash, resolved by
/// exact key-byte comparison.
type Bucket = Vec<(Vec<u8>, Arc<Slot>)>;

/// Thread-safe, type-erased artifact cache.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    buckets: Mutex<HashMap<u64, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact under `key`, building (and inserting) it with
    /// `build` on a miss.
    ///
    /// The lock is **not** held while `build` runs; concurrent requesters
    /// of the same key block until the build completes and then share the
    /// one artifact (single-flight — see the module docs). Builds must be
    /// deterministic functions of the key, which is exactly what makes
    /// them cacheable in the first place.
    ///
    /// # Panics
    /// If an artifact was previously stored under the same key with a
    /// different type, or if `build` panics (the panic is propagated).
    pub fn get_or_insert_with<T, F>(&self, key: CacheKey, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let hash = key.fnv1a();
        let mut build = Some(build);
        loop {
            let (slot, is_builder) = {
                let mut buckets = self.buckets.lock().expect("cache poisoned");
                let bucket = buckets.entry(hash).or_default();
                match bucket.iter().find(|(k, _)| *k == key.bytes) {
                    Some((_, slot)) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(Slot::new());
                        bucket.push((key.bytes.clone(), Arc::clone(&slot)));
                        (slot, true)
                    }
                }
            };
            if is_builder {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter!("cache.miss").inc();
                let build = build.take().expect("a thread builds at most once");
                match catch_unwind(AssertUnwindSafe(build)) {
                    Ok(value) => {
                        let erased: Erased = Arc::new(value);
                        slot.finish(SlotState::Ready(Arc::clone(&erased)));
                        return downcast::<T>(erased);
                    }
                    Err(payload) => {
                        // Unblock waiters, drop the slot so later lookups
                        // rebuild, and let the panic take down this cell.
                        slot.finish(SlotState::Failed);
                        {
                            let mut buckets = self.buckets.lock().expect("cache poisoned");
                            if let Some(bucket) = buckets.get_mut(&hash) {
                                bucket.retain(|(_, s)| !Arc::ptr_eq(s, &slot));
                            }
                        }
                        resume_unwind(payload);
                    }
                }
            } else {
                let mut state = slot.state.lock().expect("cache slot poisoned");
                loop {
                    match &*state {
                        SlotState::Ready(value) => {
                            let value = Arc::clone(value);
                            drop(state);
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            obs::counter!("cache.hit").inc();
                            return downcast::<T>(value);
                        }
                        SlotState::Failed => break,
                        SlotState::Pending => {
                            state = slot.ready.wait(state).expect("cache slot poisoned");
                        }
                    }
                }
                // The builder panicked; retry from the top (this thread may
                // become the new builder).
            }
        }
    }

    /// Current hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .buckets
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

fn downcast<T: Send + Sync + 'static>(erased: Erased) -> Arc<T> {
    erased
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("artifact cache type mismatch: one key stored two types"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_counts() {
        let cache = ArtifactCache::new();
        let key = || {
            CacheKey::new("t")
                .push_str("fir")
                .push_usize(300)
                .push_u64(2021)
        };
        let mut builds = 0;
        let a = cache.get_or_insert_with::<u64, _>(key(), || {
            builds += 1;
            42
        });
        let b = cache.get_or_insert_with::<u64, _>(key(), || {
            builds += 1;
            99
        });
        assert_eq!(*a, 42);
        assert_eq!(*b, 42, "second lookup must reuse the first artifact");
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_triples_never_collide() {
        // Every distinct (kernel, frames, seed) triple must map to its own
        // artifact, including pairs crafted to stress field boundaries.
        let cache = ArtifactCache::new();
        let triples: Vec<(&str, usize, u64)> = vec![
            ("fir", 300, 2021),
            ("fir", 300, 2022),
            ("fir", 301, 2021),
            ("fir2", 300, 2021),
            // Same concatenated text, different field split.
            ("ab", 1, 0),
            ("a", 1, 0),
            ("", 1, 0),
        ];
        for (i, (kernel, frames, seed)) in triples.iter().enumerate() {
            let key = CacheKey::new("prepared")
                .push_str(kernel)
                .push_usize(*frames)
                .push_u64(*seed);
            let value = cache.get_or_insert_with::<usize, _>(key, || i);
            assert_eq!(*value, i, "triple {i} aliased an earlier artifact");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, triples.len() as u64);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, triples.len());
    }

    #[test]
    fn namespaces_separate_artifacts() {
        let cache = ArtifactCache::new();
        let a = cache.get_or_insert_with::<u32, _>(CacheKey::new("ns-a").push_u64(7), || 1);
        let b = cache.get_or_insert_with::<u32, _>(CacheKey::new("ns-b").push_u64(7), || 2);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let cache = ArtifactCache::new();
        let key = || CacheKey::new("ns").push_u64(1);
        let _ = cache.get_or_insert_with::<u32, _>(key(), || 1);
        let _ = cache.get_or_insert_with::<u64, _>(key(), || 1);
    }

    #[test]
    fn concurrent_lookups_build_each_key_exactly_once() {
        let cache = ArtifactCache::new();
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for round in 0..64u64 {
                        let key = CacheKey::new("shared").push_u64(round % 4);
                        let v = cache.get_or_insert_with::<u64, _>(key, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            round % 4
                        });
                        assert_eq!(*v, round % 4);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.hits + stats.misses, 8 * 64);
        assert_eq!(
            builds.load(Ordering::Relaxed),
            4,
            "single-flight: each key builds exactly once"
        );
        assert_eq!(stats.misses, 4, "misses equal builds");
    }

    #[test]
    fn permanently_failing_build_is_attempted_at_most_once_per_requester() {
        // A build that always fails must not be spin-retried: each
        // requesting thread attempts it at most once (the `Option`-taken
        // builder enforces this structurally) and sees the panic itself.
        let cache = ArtifactCache::new();
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..7 {
                scope.spawn(|| {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _ = cache.get_or_insert_with::<u64, _>(
                            CacheKey::new("doomed").push_u64(1),
                            || {
                                builds.fetch_add(1, Ordering::Relaxed);
                                panic!("permanent build failure");
                            },
                        );
                    }));
                    assert!(result.is_err(), "every requester observes the failure");
                });
            }
        });
        let builds = builds.load(Ordering::Relaxed);
        assert!(
            (1..=7).contains(&builds),
            "at most one build per requester, got {builds}"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, builds, "each failed build counts one miss");
        assert_eq!(stats.entries, 0, "failed slots are not retained");
    }

    #[test]
    fn panicking_build_unblocks_waiters_and_allows_retry() {
        let cache = ArtifactCache::new();
        let key = || CacheKey::new("flaky").push_u64(1);
        let first = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = cache.get_or_insert_with::<u64, _>(key(), || panic!("build exploded"));
        }));
        assert!(first.is_err(), "builder sees the panic");
        // The failed slot was removed: a retry rebuilds and succeeds.
        let v = cache.get_or_insert_with::<u64, _>(key(), || 7);
        assert_eq!(*v, 7);
        assert_eq!(cache.stats().entries, 1);
    }
}
