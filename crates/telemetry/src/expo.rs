//! Prometheus-style text exposition.
//!
//! [`render_prometheus`] merges the two metric layers into one scrape
//! document:
//!
//! - **obs counters** (deterministic work counts) become
//!   `lockbind_<name>_total` counter series, names sanitized by mapping
//!   every non-`[a-zA-Z0-9_]` byte to `_` (so `serve.requests` scrapes
//!   as `lockbind_serve_requests_total`);
//! - **telemetry state** (wall-clock flavored) becomes gauges
//!   (`lockbind_inflight`, `lockbind_slo_burn_short`, …) labelled by
//!   tenant, plus one cumulative histogram `lockbind_latency_us` with a
//!   fixed `le` ladder, `_sum`, and `_count`.
//!
//! Format contract (validated by the CI `telemetry` job):
//!
//! - every metric family is preceded by exactly one `# HELP` and one
//!   `# TYPE` line;
//! - no family name appears twice;
//! - counter families (including histogram `_bucket`/`_sum`/`_count`
//!   series) are monotone across successive scrapes — which is why the
//!   histogram renders from the **cumulative** latency histogram, never
//!   the windowed one.

use std::fmt::Write as _;

use lockbind_obs::MetricsSnapshot;

use crate::hist::HistSnapshot;
use crate::TelemetrySnapshot;

/// `le` ladder (µs) for the exposed latency histogram. Bounds are
/// cumulative counts of telemetry buckets whose upper bound fits, so
/// each series can overstate a bound by at most one sub-bucket (~3%)
/// and is exactly monotone across scrapes.
pub const LATENCY_LE_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000,
];

/// Maps a dotted obs name onto the Prometheus grammar.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn write_latency_histogram(out: &mut String, name: &str, labels: &str, snap: &HistSnapshot) {
    let count = snap.count();
    for le in LATENCY_LE_US {
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {}",
            snap.cumulative_le(le)
        );
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {count}");
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_count {count}");
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
    }
}

/// Renders the full scrape document: obs counters first (sorted by
/// name, as the registry snapshot iterates), then telemetry gauges and
/// the latency histogram.
pub fn render_prometheus(obs: &MetricsSnapshot, telem: &TelemetrySnapshot) -> String {
    let mut out = String::new();

    for (name, value) in &obs.counters {
        let fam = format!("lockbind_{}_total", sanitize(name));
        family(&mut out, &fam, &format!("obs counter {name}"), "counter");
        let _ = writeln!(out, "{fam} {value}");
    }

    family(
        &mut out,
        "lockbind_uptime_us",
        "microseconds since the telemetry hub started",
        "gauge",
    );
    let _ = writeln!(out, "lockbind_uptime_us {}", telem.uptime_us);

    family(
        &mut out,
        "lockbind_inflight",
        "admitted-but-unanswered requests per tenant",
        "gauge",
    );
    for t in &telem.tenants {
        let _ = writeln!(
            out,
            "lockbind_inflight{{tenant=\"{}\"}} {}",
            escape_label(&t.tenant),
            t.inflight
        );
    }

    family(
        &mut out,
        "lockbind_tenant_requests_total",
        "requests seen per tenant (admitted + shed)",
        "counter",
    );
    for t in &telem.tenants {
        let _ = writeln!(
            out,
            "lockbind_tenant_requests_total{{tenant=\"{}\"}} {}",
            escape_label(&t.tenant),
            t.requests
        );
    }

    family(
        &mut out,
        "lockbind_tenant_shed_total",
        "requests shed per tenant",
        "counter",
    );
    for t in &telem.tenants {
        let _ = writeln!(
            out,
            "lockbind_tenant_shed_total{{tenant=\"{}\"}} {}",
            escape_label(&t.tenant),
            t.shed
        );
    }

    family(
        &mut out,
        "lockbind_slo_burn_short",
        "SLO burn rate over the short window, per tenant",
        "gauge",
    );
    for t in &telem.tenants {
        let _ = writeln!(
            out,
            "lockbind_slo_burn_short{{tenant=\"{}\"}} {}",
            escape_label(&t.tenant),
            t.slo.burn_short
        );
    }

    family(
        &mut out,
        "lockbind_slo_burn_long",
        "SLO burn rate over the long window, per tenant",
        "gauge",
    );
    for t in &telem.tenants {
        let _ = writeln!(
            out,
            "lockbind_slo_burn_long{{tenant=\"{}\"}} {}",
            escape_label(&t.tenant),
            t.slo.burn_long
        );
    }

    family(
        &mut out,
        "lockbind_flight_events_total",
        "flight-recorder events recorded since start",
        "counter",
    );
    let _ = writeln!(
        out,
        "lockbind_flight_events_total {}",
        telem.flight_recorded
    );

    family(
        &mut out,
        "lockbind_flight_dumps_total",
        "flight-recorder dumps written since start",
        "counter",
    );
    let _ = writeln!(out, "lockbind_flight_dumps_total {}", telem.flight_dumps);

    family(
        &mut out,
        "lockbind_flight_dump_failures_total",
        "flight-recorder dumps that failed to write since start",
        "counter",
    );
    let _ = writeln!(
        out,
        "lockbind_flight_dump_failures_total {}",
        telem.flight_dump_failed
    );

    family(
        &mut out,
        "lockbind_latency_us",
        "service latency in microseconds (cumulative since start)",
        "histogram",
    );
    write_latency_histogram(&mut out, "lockbind_latency_us", "", &telem.latency_total);
    for t in &telem.tenants {
        let labels = format!("tenant=\"{}\"", escape_label(&t.tenant));
        write_latency_histogram(&mut out, "lockbind_latency_us", &labels, &t.latency_total);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, TelemetryConfig};
    use lockbind_obs::MetricsSnapshot;

    fn sample() -> (MetricsSnapshot, TelemetrySnapshot) {
        let mut obs = MetricsSnapshot::default();
        obs.counters.insert("serve.requests".to_string(), 42);
        obs.counters.insert("serve.shed".to_string(), 3);
        let t = Telemetry::new(TelemetryConfig::default());
        t.on_admit(1, "alpha");
        t.on_response(1, "alpha", true, 700);
        t.on_shed(2, "beta", "queue_full");
        (obs, t.snapshot())
    }

    /// Parses family names (from `# TYPE`) and bare series names.
    fn type_lines(doc: &str) -> Vec<&str> {
        doc.lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect()
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("serve.requests"), "serve_requests");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn every_series_has_exactly_one_type_and_help() {
        let (obs, telem) = sample();
        let doc = render_prometheus(&obs, &telem);
        let families = type_lines(&doc);
        assert!(!families.is_empty());
        // No duplicate family names.
        let mut sorted = families.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), families.len(), "duplicate family in:\n{doc}");
        // HELP and TYPE counts match.
        let helps = doc.lines().filter(|l| l.starts_with("# HELP ")).count();
        assert_eq!(helps, families.len());
        // Every sample line belongs to a declared family.
        for line in doc.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let name = line
                .split(['{', ' '])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                families.contains(&name),
                "series {name} has no # TYPE in:\n{doc}"
            );
        }
    }

    #[test]
    fn obs_counters_become_total_series() {
        let (obs, telem) = sample();
        let doc = render_prometheus(&obs, &telem);
        assert!(doc.contains("lockbind_serve_requests_total 42"));
        assert!(doc.contains("lockbind_serve_shed_total 3"));
        assert!(doc.contains("# TYPE lockbind_serve_requests_total counter"));
    }

    #[test]
    fn histogram_is_cumulative_and_inf_equals_count() {
        let (obs, telem) = sample();
        let doc = render_prometheus(&obs, &telem);
        assert!(doc.contains("# TYPE lockbind_latency_us histogram"));
        assert!(doc.contains("lockbind_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(doc.contains("lockbind_latency_us_count 1"));
        // 700µs observation: below the 1000 bound, above the 500 bound.
        assert!(doc.contains("lockbind_latency_us_bucket{le=\"1000\"} 1"));
        assert!(doc.contains("lockbind_latency_us_bucket{le=\"500\"} 0"));
        // Per-tenant series carry the label.
        assert!(doc.contains("lockbind_latency_us_bucket{tenant=\"alpha\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn counters_are_monotone_across_scrapes() {
        let mut obs = MetricsSnapshot::default();
        obs.counters.insert("serve.requests".to_string(), 1);
        let t = Telemetry::new(TelemetryConfig::default());
        t.on_admit(1, "alpha");
        t.on_response(1, "alpha", true, 700);
        let first = render_prometheus(&obs, &t.snapshot());
        t.on_admit(2, "alpha");
        t.on_response(2, "alpha", false, 90_000);
        t.rotate(); // decays windows but must not decay exposed counters
        obs.counters.insert("serve.requests".to_string(), 2);
        let second = render_prometheus(&obs, &t.snapshot());

        let value = |doc: &str, prefix: &str| -> f64 {
            doc.lines()
                .find(|l| l.starts_with(prefix) && !l.starts_with('#'))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("series {prefix} missing"))
        };
        for series in [
            "lockbind_serve_requests_total ",
            "lockbind_tenant_requests_total{tenant=\"alpha\"}",
            "lockbind_latency_us_count",
            "lockbind_latency_us_bucket{le=\"+Inf\"}",
            "lockbind_flight_events_total",
        ] {
            assert!(
                value(&second, series) >= value(&first, series),
                "{series} went backwards"
            );
        }
    }
}
