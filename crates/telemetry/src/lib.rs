//! Runtime telemetry for the lockbind serve daemon.
//!
//! This crate is the **non-deterministic sibling** of `lockbind-obs`.
//! The `obs` registry records deterministic work counts — its snapshot
//! feeds `MetricsSnapshot::render_deterministic` and the committed
//! goldens, so nothing wall-clock flavored may ever enter it. Everything
//! this crate measures is wall-clock flavored by construction: latency
//! quantiles, queue wait, SLO burn rates, flight-recorder timelines.
//! The two layers meet only at the exposition endpoint
//! ([`expo::render_prometheus`]), which renders obs counters and
//! telemetry series side by side into one scrape document.
//!
//! Layout:
//!
//! - [`hist`] — lock-free log-linear histograms (p50/p90/p99/p999) with
//!   ring-of-epochs windowed decay;
//! - [`slo`] — per-tenant SLO trackers: latency objective + error/shed
//!   budget, burn rate over a short and a long window;
//! - [`recorder`] — the flight recorder: a bounded ring of structured
//!   request-path events dumped as JSONL on anomaly or `SIGUSR1`;
//! - [`expo`] — Prometheus-style text exposition (`# HELP`/`# TYPE`).
//!
//! [`Telemetry`] ties them together: the serve request path calls
//! `on_admit` / `on_shed` / `on_response` / [`Telemetry::event`], a
//! rotator thread calls [`Telemetry::rotate`] each epoch, and readers
//! take a [`TelemetrySnapshot`] — the payload behind the `introspect`
//! wire kind, the `--telemetry-addr` scrape endpoint, and the
//! `telemetry` member of the engine's `ServeAggregates`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod recorder;
pub mod slo;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use lockbind_obs::Json;

use hist::{HistSnapshot, LogLinearHistogram, WindowedHistogram};
use recorder::{DumpTrigger, FlightKind, FlightRecorder};
use slo::{SloOutcome, SloSnapshot, SloTracker};

/// Tuning for one [`Telemetry`] instance.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Epoch slots per window ring (windowed quantiles and burn rates
    /// cover `epoch_slots × epoch_ms` of traffic).
    pub epoch_slots: usize,
    /// Epochs in the short SLO window.
    pub short_epochs: usize,
    /// Rotation cadence in milliseconds — informational here (the
    /// caller drives [`Telemetry::rotate`]); reported in snapshots so
    /// readers can turn windowed counts into rates.
    pub epoch_ms: u64,
    /// Good-request target fraction for every tenant's SLO.
    pub slo_target: f64,
    /// Latency objective in microseconds; slower completions count
    /// against the SLO budget even when they succeed.
    pub slo_latency_us: u64,
    /// Both SLO windows must burn at least this fast to trigger an
    /// anomaly dump.
    pub slo_burn_threshold: f64,
    /// Shed fraction (of arriving requests, both windows) that counts
    /// as a shed spike.
    pub shed_spike_fraction: f64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_slots: 12,
            short_epochs: 2,
            epoch_ms: 1000,
            slo_target: 0.99,
            slo_latency_us: 250_000,
            slo_burn_threshold: 2.0,
            shed_spike_fraction: 0.2,
            flight_capacity: 512,
        }
    }
}

/// A small ring of per-epoch counters (windowed request/shed rates).
#[derive(Debug)]
struct WindowedCounter {
    epochs: Vec<AtomicU64>,
    current: AtomicUsize,
}

impl WindowedCounter {
    fn new(slots: usize) -> Self {
        WindowedCounter {
            epochs: (0..slots.max(1)).map(|_| AtomicU64::new(0)).collect(),
            current: AtomicUsize::new(0),
        }
    }

    fn add(&self, n: u64) {
        let cur = self.current.load(Ordering::Relaxed) % self.epochs.len();
        self.epochs[cur].fetch_add(n, Ordering::Relaxed);
    }

    fn rotate(&self) {
        let next = (self.current.load(Ordering::Relaxed) + 1) % self.epochs.len();
        self.epochs[next].store(0, Ordering::Relaxed);
        self.current.store(next, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.epochs.iter().map(|e| e.load(Ordering::Relaxed)).sum()
    }
}

/// Per-tenant runtime state.
#[derive(Debug)]
struct TenantTelemetry {
    /// Windowed latency (quantiles for `lockbind_top` / introspect).
    latency_window: WindowedHistogram,
    /// Cumulative latency (monotone — feeds Prometheus exposition).
    latency_total: LogLinearHistogram,
    slo: SloTracker,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    inflight: AtomicU64,
    window_requests: WindowedCounter,
    window_shed: WindowedCounter,
}

impl TenantTelemetry {
    fn new(cfg: &TelemetryConfig) -> Self {
        TenantTelemetry {
            latency_window: WindowedHistogram::new(cfg.epoch_slots),
            latency_total: LogLinearHistogram::new(),
            slo: SloTracker::new(
                cfg.epoch_slots,
                cfg.short_epochs,
                cfg.slo_target,
                cfg.slo_latency_us,
            ),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            window_requests: WindowedCounter::new(cfg.epoch_slots),
            window_shed: WindowedCounter::new(cfg.epoch_slots),
        }
    }

    fn rotate(&self) {
        self.latency_window.rotate();
        self.slo.rotate();
        self.window_requests.rotate();
        self.window_shed.rotate();
    }
}

/// The runtime-telemetry hub wired into the serve daemon.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    started: Instant,
    tenants: RwLock<BTreeMap<String, Arc<TenantTelemetry>>>,
    /// Global windowed latency across all tenants.
    latency_window: WindowedHistogram,
    /// Global cumulative latency (monotone, for exposition).
    latency_total: LogLinearHistogram,
    /// Shed-spike detector: an SLO tracker where "bad" means shed, so
    /// `burning(1.0)` fires exactly when the windowed shed fraction
    /// exceeds [`TelemetryConfig::shed_spike_fraction`].
    shed_spike: SloTracker,
    recorder: FlightRecorder,
    /// Serializes anomaly-triggered dumps so concurrent pollers cannot
    /// interleave file writes.
    dump_gate: Mutex<()>,
    /// Flight dumps that failed to write (unwritable dir, disk full…).
    dump_failed: AtomicU64,
    /// Whether the first dump failure has been logged — later failures
    /// are only counted, so a permanently broken dir cannot flood logs.
    dump_fail_logged: AtomicBool,
}

impl Telemetry {
    /// A fresh hub with no traffic recorded.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let shed_spike = SloTracker::new(
            cfg.epoch_slots,
            cfg.short_epochs,
            1.0 - cfg.shed_spike_fraction,
            u64::MAX,
        );
        Telemetry {
            recorder: FlightRecorder::new(cfg.flight_capacity),
            latency_window: WindowedHistogram::new(cfg.epoch_slots),
            latency_total: LogLinearHistogram::new(),
            shed_spike,
            tenants: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
            dump_gate: Mutex::new(()),
            dump_failed: AtomicU64::new(0),
            dump_fail_logged: AtomicBool::new(false),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The flight recorder (for direct dump triggers).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    fn tenant(&self, name: &str) -> Arc<TenantTelemetry> {
        if let Some(t) = self.tenants.read().unwrap().get(name) {
            return Arc::clone(t);
        }
        let mut map = self.tenants.write().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(TenantTelemetry::new(&self.cfg))),
        )
    }

    /// Records a raw flight-recorder event (deadline, cancel, cache
    /// miss, coalesce, drain… — admission and shed have dedicated
    /// entry points that also update counters).
    pub fn event(&self, kind: FlightKind, request_id: u64, tenant: &str, detail: &str) {
        self.recorder.record(kind, request_id, tenant, detail);
    }

    /// A request was admitted for `tenant`.
    pub fn on_admit(&self, request_id: u64, tenant: &str) {
        let t = self.tenant(tenant);
        t.requests.fetch_add(1, Ordering::Relaxed);
        t.inflight.fetch_add(1, Ordering::Relaxed);
        t.window_requests.add(1);
        self.shed_spike.record(SloOutcome::Good);
        self.recorder
            .record(FlightKind::Admit, request_id, tenant, "");
    }

    /// A request was shed before admission.
    pub fn on_shed(&self, request_id: u64, tenant: &str, reason: &str) {
        let t = self.tenant(tenant);
        t.requests.fetch_add(1, Ordering::Relaxed);
        t.shed.fetch_add(1, Ordering::Relaxed);
        t.window_requests.add(1);
        t.window_shed.add(1);
        t.slo.record(SloOutcome::Bad);
        self.shed_spike.record(SloOutcome::Bad);
        self.recorder
            .record(FlightKind::Shed, request_id, tenant, reason);
    }

    /// An admitted request finished (any fate): `ok` is the wire-level
    /// success flag, `latency_us` admission-to-response time.
    pub fn on_response(&self, _request_id: u64, tenant: &str, ok: bool, latency_us: u64) {
        let t = self.tenant(tenant);
        if ok {
            t.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            t.errors.fetch_add(1, Ordering::Relaxed);
        }
        let prev = t.inflight.load(Ordering::Relaxed);
        if prev > 0 {
            t.inflight.fetch_sub(1, Ordering::Relaxed);
        }
        t.latency_window.record(latency_us);
        t.latency_total.record(latency_us);
        t.slo.record(t.slo.classify(ok, latency_us));
        self.latency_window.record(latency_us);
        self.latency_total.record(latency_us);
    }

    /// Advances every window ring by one epoch. Call on a fixed cadence
    /// (`epoch_ms`) from a single rotator thread.
    pub fn rotate(&self) {
        self.latency_window.rotate();
        self.shed_spike.rotate();
        for t in self.tenants.read().unwrap().values() {
            t.rotate();
        }
    }

    /// Writes a flight dump (if events arrived since the last one).
    pub fn dump(&self, dir: &Path, trigger: DumpTrigger) -> std::io::Result<Option<PathBuf>> {
        let _gate = self.dump_gate.lock().unwrap();
        self.recorder.dump(dir, trigger)
    }

    /// Like [`Self::dump`], but a write failure degrades instead of
    /// propagating: the first failure is logged to stderr, every failure
    /// increments the `flight.dump_failed` snapshot counter, and the
    /// recorded events stay in the ring for the next trigger. Safe to
    /// call from the rotator thread — it never panics on I/O errors.
    pub fn dump_logged(&self, dir: &Path, trigger: DumpTrigger) -> Option<PathBuf> {
        match self.dump(dir, trigger) {
            Ok(path) => path,
            Err(e) => {
                self.dump_failed.fetch_add(1, Ordering::Relaxed);
                if !self.dump_fail_logged.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "[telemetry] flight dump to {} failed: {e} \
                         (events kept in ring; further failures counted, not logged)",
                        dir.display()
                    );
                }
                None
            }
        }
    }

    /// Flight dumps that failed to write since start.
    pub fn dump_failures(&self) -> u64 {
        self.dump_failed.load(Ordering::Relaxed)
    }

    /// Checks anomaly conditions (shed spike, per-tenant SLO burn) and
    /// dumps the flight recorder for each that fires. Returns the dump
    /// paths written. Call periodically alongside [`Self::rotate`].
    pub fn poll_anomalies(&self, dir: &Path) -> Vec<PathBuf> {
        let mut written = Vec::new();
        if self.shed_spike.snapshot().burning(1.0) {
            if let Some(path) = self.dump_logged(dir, DumpTrigger::ShedSpike) {
                written.push(path);
            }
        }
        let burning = self
            .tenants
            .read()
            .unwrap()
            .values()
            .any(|t| t.slo.snapshot().burning(self.cfg.slo_burn_threshold));
        if burning {
            if let Some(path) = self.dump_logged(dir, DumpTrigger::SloBurn) {
                written.push(path);
            }
        }
        written
    }

    /// A point-in-time reading of everything the hub tracks.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let tenants = self
            .tenants
            .read()
            .unwrap()
            .iter()
            .map(|(name, t)| TenantSnapshot {
                tenant: name.clone(),
                requests: t.requests.load(Ordering::Relaxed),
                ok: t.ok.load(Ordering::Relaxed),
                errors: t.errors.load(Ordering::Relaxed),
                shed: t.shed.load(Ordering::Relaxed),
                inflight: t.inflight.load(Ordering::Relaxed),
                window_requests: t.window_requests.sum(),
                window_shed: t.window_shed.sum(),
                latency_window: t.latency_window.snapshot(),
                latency_total: t.latency_total.snapshot(),
                slo: t.slo.snapshot(),
            })
            .collect();
        TelemetrySnapshot {
            uptime_us: self.started.elapsed().as_micros() as u64,
            window_ms: self.cfg.epoch_ms * self.cfg.epoch_slots as u64,
            latency_window: self.latency_window.snapshot(),
            latency_total: self.latency_total.snapshot(),
            tenants,
            flight_recorded: self.recorder.recorded(),
            flight_dumps: self.recorder.dumps(),
            flight_dump_failed: self.dump_failed.load(Ordering::Relaxed),
            flight_capacity: self.cfg.flight_capacity as u64,
        }
    }
}

/// Quantile digest of one histogram snapshot, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Observations in the snapshot.
    pub count: u64,
    /// Mean (µs).
    pub mean_us: f64,
    /// p50 (µs, bucket upper bound).
    pub p50: u64,
    /// p90 (µs).
    pub p90: u64,
    /// p99 (µs).
    pub p99: u64,
    /// p999 (µs).
    pub p999: u64,
    /// Max (µs, bucket upper bound).
    pub max: u64,
}

impl LatencySummary {
    /// Digests a histogram snapshot.
    pub fn of(snap: &HistSnapshot) -> Self {
        LatencySummary {
            count: snap.count(),
            mean_us: snap.mean(),
            p50: snap.quantile(0.50),
            p90: snap.quantile(0.90),
            p99: snap.quantile(0.99),
            p999: snap.quantile(0.999),
            max: snap.max(),
        }
    }

    /// JSON object with the standard quantile keys.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean_us", Json::from(self.mean_us)),
            ("p50", Json::from(self.p50)),
            ("p90", Json::from(self.p90)),
            ("p99", Json::from(self.p99)),
            ("p999", Json::from(self.p999)),
            ("max", Json::from(self.max)),
        ])
    }
}

/// One tenant's slice of a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Requests seen (admitted + shed), cumulative.
    pub requests: u64,
    /// Successful responses, cumulative.
    pub ok: u64,
    /// Error responses (including deadline/cancel), cumulative.
    pub errors: u64,
    /// Shed requests, cumulative.
    pub shed: u64,
    /// Currently admitted-but-unanswered requests.
    pub inflight: u64,
    /// Requests seen inside the current window.
    pub window_requests: u64,
    /// Sheds inside the current window.
    pub window_shed: u64,
    /// Windowed latency histogram (drives live quantiles).
    pub latency_window: HistSnapshot,
    /// Cumulative latency histogram (drives Prometheus exposition).
    pub latency_total: HistSnapshot,
    /// SLO state.
    pub slo: SloSnapshot,
}

impl TenantSnapshot {
    /// JSON object for introspect / `ServeAggregates.telemetry`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::from(self.tenant.as_str())),
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("errors", Json::from(self.errors)),
            ("shed", Json::from(self.shed)),
            ("inflight", Json::from(self.inflight)),
            ("window_requests", Json::from(self.window_requests)),
            ("window_shed", Json::from(self.window_shed)),
            (
                "latency_us",
                LatencySummary::of(&self.latency_window).to_json(),
            ),
            (
                "slo",
                Json::obj([
                    ("target", Json::from(self.slo.target)),
                    (
                        "latency_objective_us",
                        Json::from(self.slo.latency_objective_us),
                    ),
                    ("burn_short", Json::from(self.slo.burn_short)),
                    ("burn_long", Json::from(self.slo.burn_long)),
                    ("total", Json::from(self.slo.total)),
                    ("bad", Json::from(self.slo.bad)),
                ]),
            ),
        ])
    }
}

/// A point-in-time reading of a [`Telemetry`] hub.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Microseconds since the hub was created.
    pub uptime_us: u64,
    /// Length of the decay window in milliseconds.
    pub window_ms: u64,
    /// Global windowed latency.
    pub latency_window: HistSnapshot,
    /// Global cumulative latency (monotone).
    pub latency_total: HistSnapshot,
    /// Per-tenant slices, sorted by tenant name.
    pub tenants: Vec<TenantSnapshot>,
    /// Flight-recorder events recorded since start.
    pub flight_recorded: u64,
    /// Flight dumps written since start.
    pub flight_dumps: u64,
    /// Flight dumps that failed to write since start.
    pub flight_dump_failed: u64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: u64,
}

impl TelemetrySnapshot {
    /// The JSON document served by the `introspect` wire kind and
    /// embedded in the engine's `ServeAggregates.telemetry`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(1u64)),
            ("uptime_us", Json::from(self.uptime_us)),
            ("window_ms", Json::from(self.window_ms)),
            (
                "latency_us",
                LatencySummary::of(&self.latency_window).to_json(),
            ),
            (
                "latency_total_us",
                LatencySummary::of(&self.latency_total).to_json(),
            ),
            (
                "tenants",
                Json::arr(self.tenants.iter().map(TenantSnapshot::to_json)),
            ),
            (
                "flight",
                Json::obj([
                    ("recorded", Json::from(self.flight_recorded)),
                    ("dumps", Json::from(self.flight_dumps)),
                    ("dump_failed", Json::from(self.flight_dump_failed)),
                    ("capacity", Json::from(self.flight_capacity)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> TelemetryConfig {
        TelemetryConfig {
            epoch_slots: 4,
            short_epochs: 1,
            epoch_ms: 10,
            slo_target: 0.9,
            slo_latency_us: 1_000,
            slo_burn_threshold: 2.0,
            shed_spike_fraction: 0.5,
            flight_capacity: 64,
        }
    }

    #[test]
    fn request_path_updates_counters_and_quantiles() {
        let t = Telemetry::new(fast_cfg());
        for id in 0..100u64 {
            t.on_admit(id, "alpha");
            t.on_response(id, "alpha", true, 100 + id);
        }
        t.on_admit(200, "alpha");
        let snap = t.snapshot();
        assert_eq!(snap.tenants.len(), 1);
        let alpha = &snap.tenants[0];
        assert_eq!(alpha.tenant, "alpha");
        assert_eq!(alpha.requests, 101);
        assert_eq!(alpha.ok, 100);
        assert_eq!(alpha.inflight, 1);
        let lat = LatencySummary::of(&alpha.latency_window);
        assert_eq!(lat.count, 100);
        assert!(lat.p50 >= 100 && lat.p50 <= 210, "p50 {}", lat.p50);
        assert!(lat.p999 >= lat.p50);
    }

    #[test]
    fn shed_spike_triggers_a_dump() {
        let dir = std::env::temp_dir().join(format!("lockbind-telem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::new(fast_cfg());
        for id in 0..10u64 {
            t.on_shed(id, "alpha", "queue_full");
        }
        let written = t.poll_anomalies(&dir);
        assert!(!written.is_empty(), "all-shed traffic is a spike");
        let body = std::fs::read_to_string(&written[0]).unwrap();
        assert!(body.lines().next().unwrap().contains("flight_dump"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_flight_dir_degrades_without_panicking() {
        // A path component that is a regular file is unwritable even for
        // root, unlike a chmod-based read-only directory.
        let base = std::env::temp_dir().join(format!("lockbind-telem-ro-{}", std::process::id()));
        let _ = std::fs::remove_file(&base);
        std::fs::write(&base, b"not a directory").unwrap();
        let dir = base.join("flight");
        let t = Telemetry::new(fast_cfg());
        for id in 0..10u64 {
            t.on_shed(id, "alpha", "queue_full");
        }
        // Repeated polls: no panic, nothing written, every failure counted.
        assert!(t.poll_anomalies(&dir).is_empty());
        assert!(t.poll_anomalies(&dir).is_empty());
        assert!(
            t.dump_failures() >= 2,
            "failures counted: {}",
            t.dump_failures()
        );
        let snap = t.snapshot();
        assert_eq!(snap.flight_dump_failed, t.dump_failures());
        assert_eq!(snap.flight_dumps, 0, "no dump ever written");
        assert!(snap.to_json().render().contains("\"dump_failed\":"));
        // Events survive the failed dumps: a working dir gets them all.
        let good = std::env::temp_dir().join(format!("lockbind-telem-rw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&good);
        let written = t.poll_anomalies(&good);
        assert!(!written.is_empty(), "events were kept in the ring");
        let body = std::fs::read_to_string(&written[0]).unwrap();
        assert!(body.lines().count() >= 11, "all shed events retained");
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_dir_all(&good);
    }

    #[test]
    fn healthy_traffic_triggers_nothing() {
        let dir = std::env::temp_dir().join(format!("lockbind-telem-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::new(fast_cfg());
        for id in 0..50u64 {
            t.on_admit(id, "beta");
            t.on_response(id, "beta", true, 10);
        }
        assert!(t.poll_anomalies(&dir).is_empty());
        assert!(!dir.exists(), "no dump directory created");
    }

    #[test]
    fn snapshot_json_has_documented_shape() {
        let t = Telemetry::new(fast_cfg());
        t.on_admit(1, "alpha");
        t.on_response(1, "alpha", true, 500);
        let doc = t.snapshot().to_json().render();
        for key in [
            "\"schema_version\":1",
            "\"window_ms\":40",
            "\"latency_us\"",
            "\"p999\"",
            "\"tenants\"",
            "\"slo\"",
            "\"burn_short\"",
            "\"flight\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn rotation_decays_windowed_but_not_total() {
        let cfg = fast_cfg();
        let slots = cfg.epoch_slots;
        let t = Telemetry::new(cfg);
        t.on_admit(1, "alpha");
        t.on_response(1, "alpha", true, 100);
        for _ in 0..=slots {
            t.rotate();
        }
        let snap = t.snapshot();
        let alpha = &snap.tenants[0];
        assert_eq!(alpha.latency_window.count(), 0, "window decayed");
        assert_eq!(alpha.latency_total.count(), 1, "total is cumulative");
        assert_eq!(snap.latency_total.count(), 1);
    }
}
