//! Flight recorder: a fixed-size ring of recent structured events that
//! dumps itself as JSONL when something interesting happens.
//!
//! The serve request path pushes one [`FlightEvent`] per notable moment
//! (admission, shed, deadline, cancel, cache miss, coalesce, drain) into
//! a mutex-guarded ring. Pushes are cheap (one lock, one slot write) and
//! the ring is bounded, so the recorder costs the same whether the daemon
//! runs for a minute or a month.
//!
//! On an **anomaly trigger** — a shed spike, an SLO burn, a drain, or an
//! operator `SIGUSR1` — the recorder writes every retained event, oldest
//! first, as one JSON object per line. Each dump file also starts with a
//! `flight_dump` header line recording the trigger and event count, so a
//! dump is self-describing. The JSONL schema is documented in
//! `DESIGN.md` §12 and validated by the CI `telemetry` job.
//!
//! Dumps deduplicate per trigger *generation*: a trigger fires a dump
//! only if events arrived since the previous dump, so a burning SLO does
//! not rewrite an identical file every poll tick.

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lockbind_obs::Json;

/// What happened — the event vocabulary of the serve request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A request was admitted into the tenant-fair queue.
    Admit,
    /// A request was shed (queue full, tenant cap, or draining).
    Shed,
    /// A request exceeded its deadline.
    Deadline,
    /// A request was cancelled by a `cancel` request.
    Cancel,
    /// A cache miss: this request is the builder for its content key.
    CacheMiss,
    /// A request coalesced onto an in-flight builder for the same key.
    Coalesce,
    /// The daemon entered drain.
    Drain,
}

impl FlightKind {
    /// Stable wire name used in JSONL dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Admit => "admit",
            FlightKind::Shed => "shed",
            FlightKind::Deadline => "deadline",
            FlightKind::Cancel => "cancel",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::Coalesce => "coalesce",
            FlightKind::Drain => "drain",
        }
    }
}

/// Why a dump was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpTrigger {
    /// Shed rate spiked past the configured threshold.
    ShedSpike,
    /// A tenant's SLO is burning in both windows.
    SloBurn,
    /// The daemon entered drain.
    Drain,
    /// Operator sent `SIGUSR1`.
    Signal,
}

impl DumpTrigger {
    /// Stable name used in the dump header and file name.
    pub fn name(self) -> &'static str {
        match self {
            DumpTrigger::ShedSpike => "shed_spike",
            DumpTrigger::SloBurn => "slo_burn",
            DumpTrigger::Drain => "drain",
            DumpTrigger::Signal => "signal",
        }
    }
}

/// One recorded moment on the request path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (1-based, gapless per recorder).
    pub seq: u64,
    /// Microseconds since the recorder was created (monotonic clock).
    pub t_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Request id, when the event is tied to one request (0 otherwise).
    pub request_id: u64,
    /// Tenant the event belongs to (empty for daemon-level events).
    pub tenant: String,
    /// Free-form detail: shed reason, cache key prefix, drain phase…
    pub detail: String,
}

impl FlightEvent {
    /// The JSONL representation — one `event` line of a dump.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("line", Json::from("event")),
            ("seq", Json::from(self.seq)),
            ("t_us", Json::from(self.t_us)),
            ("kind", Json::from(self.kind.name())),
            ("request_id", Json::from(self.request_id)),
            ("tenant", Json::from(self.tenant.as_str())),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }
}

/// The bounded event ring plus dump bookkeeping.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
    epoch: Instant,
    seq: AtomicU64,
    dumps: AtomicU64,
    /// `seq` at the time of the last dump — a trigger only dumps when
    /// events arrived since.
    dumped_through: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (at least 16).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(16))),
            capacity: capacity.max(16),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            dumped_through: AtomicU64::new(0),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, kind: FlightKind, request_id: u64, tenant: &str, detail: &str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = FlightEvent {
            seq,
            t_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            request_id,
            tenant: tenant.to_string(),
            detail: detail.to_string(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Events recorded since creation (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Renders a dump: a `flight_dump` header line followed by one
    /// `event` line per retained event, oldest first, trailing newline.
    pub fn render_jsonl(&self, trigger: DumpTrigger) -> String {
        let events = self.snapshot();
        let mut out = String::new();
        let header = Json::obj([
            ("line", Json::from("flight_dump")),
            ("schema_version", Json::from(1u64)),
            ("trigger", Json::from(trigger.name())),
            ("events", Json::from(events.len())),
            ("recorded_total", Json::from(self.recorded())),
            ("capacity", Json::from(self.capacity)),
        ]);
        out.push_str(&header.render());
        out.push('\n');
        for event in &events {
            out.push_str(&event.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Writes a dump into `dir` if any events arrived since the last
    /// dump; returns the path written, `None` when there was nothing
    /// new. File names are `flight-<n>-<trigger>.jsonl` with a
    /// per-recorder dump counter, so successive dumps never collide.
    ///
    /// Bookkeeping only advances on success: a failed write (unwritable
    /// directory, disk full) leaves the generation and dump counter
    /// untouched, so the events stay eligible for the next trigger and
    /// the `dumps` counter never counts files that do not exist.
    /// Concurrent callers are expected to serialize (the `Telemetry` hub
    /// holds its dump gate across this call).
    pub fn dump(&self, dir: &Path, trigger: DumpTrigger) -> io::Result<Option<PathBuf>> {
        let through = self.seq.load(Ordering::Relaxed);
        if through == self.dumped_through.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let n = self.dumps.load(Ordering::Relaxed) + 1;
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-{n:04}-{}.jsonl", trigger.name()));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.render_jsonl(trigger).as_bytes())?;
        file.sync_all()?;
        self.dumped_through.store(through, Ordering::Relaxed);
        self.dumps.store(n, Ordering::Relaxed);
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_gapless() {
        let r = FlightRecorder::new(16);
        for i in 0..40u64 {
            r.record(FlightKind::Admit, i, "t0", "");
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().seq, 25, "oldest retained");
        assert_eq!(events.last().unwrap().seq, 40);
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(r.recorded(), 40);
    }

    #[test]
    fn render_is_header_plus_event_lines() {
        let r = FlightRecorder::new(16);
        r.record(FlightKind::Shed, 7, "alpha", "queue_full");
        r.record(FlightKind::Drain, 0, "", "phase=stop_accept");
        let dump = r.render_jsonl(DumpTrigger::Drain);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""line":"flight_dump""#));
        assert!(lines[0].contains(r#""trigger":"drain""#));
        assert!(lines[0].contains(r#""events":2"#));
        assert!(lines[1].contains(r#""kind":"shed""#));
        assert!(lines[1].contains(r#""tenant":"alpha""#));
        assert!(lines[1].contains(r#""detail":"queue_full""#));
        assert!(lines[2].contains(r#""kind":"drain""#));
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn failed_dumps_do_not_advance_the_generation() {
        // An unwritable "directory" (a path component that is a regular
        // file) fails even when the test runs as root, unlike a 0o555
        // permission bit.
        let base = std::env::temp_dir().join(format!("lockbind-flight-ro-{}", std::process::id()));
        let _ = std::fs::remove_file(&base);
        std::fs::write(&base, b"i am a file, not a directory").unwrap();
        let dir = base.join("sub");
        let r = FlightRecorder::new(16);
        r.record(FlightKind::Admit, 1, "t", "");
        assert!(r.dump(&dir, DumpTrigger::Signal).is_err());
        assert_eq!(r.dumps(), 0, "failed dumps are not counted as written");
        // The same events remain eligible once the directory is fixed.
        let good = std::env::temp_dir().join(format!("lockbind-flight-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&good);
        let path = r.dump(&good, DumpTrigger::Signal).unwrap();
        assert!(path.is_some(), "events survived the failed dump");
        assert_eq!(r.dumps(), 1);
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_dir_all(&good);
    }

    #[test]
    fn dump_skips_when_nothing_new() {
        let dir = std::env::temp_dir().join(format!("lockbind-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(16);
        r.record(FlightKind::Cancel, 1, "t", "");
        let first = r.dump(&dir, DumpTrigger::Signal).unwrap();
        assert!(first.is_some());
        let again = r.dump(&dir, DumpTrigger::Signal).unwrap();
        assert!(again.is_none(), "no new events, no new file");
        r.record(FlightKind::Cancel, 2, "t", "");
        let third = r.dump(&dir, DumpTrigger::SloBurn).unwrap();
        assert!(third.is_some());
        assert_ne!(first, third, "dump files never collide");
        assert_eq!(r.dumps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
