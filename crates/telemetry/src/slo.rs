//! Per-tenant SLO trackers: a latency objective plus an error/shed
//! budget, with burn rate measured over two windows.
//!
//! # Model
//!
//! An SLO is a target fraction of *good* requests, e.g. `target = 0.99`
//! means at most 1% of requests may be *bad*. A request is bad when it
//! sheds, errors, misses its deadline, or completes slower than the
//! latency objective. The **burn rate** is how fast the error budget is
//! being consumed relative to plan:
//!
//! ```text
//! burn = bad_fraction / (1 - target)
//! ```
//!
//! Burn 1.0 means the tenant is spending its budget exactly as fast as
//! the SLO allows; 10.0 means ten times too fast. Following the
//! multi-window alerting practice, each tracker reports burn over a
//! short window (the most recent epochs — catches fast burns quickly)
//! and a long window (the whole ring — filters one-epoch blips). An
//! anomaly fires only when **both** exceed the threshold.
//!
//! Counters per epoch are plain relaxed atomics, rotated by the same
//! epoch cadence as the latency windows; everything here is wall-clock
//! flavored and therefore lives outside the `obs` registry.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One epoch's worth of good/bad counts.
#[derive(Debug, Default)]
struct EpochCounts {
    good: AtomicU64,
    bad: AtomicU64,
}

impl EpochCounts {
    fn clear(&self) {
        self.good.store(0, Ordering::Relaxed);
        self.bad.store(0, Ordering::Relaxed);
    }
}

/// The outcome of one request, as the SLO tracker sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOutcome {
    /// Completed OK within the latency objective.
    Good,
    /// Shed, errored, missed a deadline, or exceeded the objective.
    Bad,
}

/// A two-window burn-rate tracker for one tenant.
#[derive(Debug)]
pub struct SloTracker {
    epochs: Vec<EpochCounts>,
    current: AtomicUsize,
    /// Epochs in the short window (≤ ring size).
    short_epochs: usize,
    /// Good-request target fraction in `(0, 1)`.
    target: f64,
    /// Latency objective in microseconds; slower-than-this completions
    /// count as bad even when they succeed.
    latency_objective_us: u64,
}

/// A point-in-time reading of one tenant's SLO state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Requests observed in the long (full-ring) window.
    pub total: u64,
    /// Bad requests in the long window.
    pub bad: u64,
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// The configured good-fraction target.
    pub target: f64,
    /// The configured latency objective (µs).
    pub latency_objective_us: u64,
}

impl SloSnapshot {
    /// True when both windows burn faster than `threshold` — the
    /// multi-window anomaly condition used by the flight recorder.
    pub fn burning(&self, threshold: f64) -> bool {
        self.burn_short >= threshold && self.burn_long >= threshold
    }
}

impl SloTracker {
    /// A tracker over `slots` epochs, with a short window of
    /// `short_epochs` (clamped to the ring size), a good-fraction
    /// `target` clamped into `(0, 1)`, and a latency objective in µs.
    pub fn new(slots: usize, short_epochs: usize, target: f64, latency_objective_us: u64) -> Self {
        let slots = slots.max(1);
        SloTracker {
            epochs: (0..slots).map(|_| EpochCounts::default()).collect(),
            current: AtomicUsize::new(0),
            short_epochs: short_epochs.clamp(1, slots),
            target: target.clamp(0.0001, 0.9999),
            latency_objective_us,
        }
    }

    /// The configured latency objective (µs).
    pub fn latency_objective_us(&self) -> u64 {
        self.latency_objective_us
    }

    /// Classifies a completed request: `ok` is the wire-level success
    /// flag, `latency_us` the observed service time.
    pub fn classify(&self, ok: bool, latency_us: u64) -> SloOutcome {
        if ok && latency_us <= self.latency_objective_us {
            SloOutcome::Good
        } else {
            SloOutcome::Bad
        }
    }

    /// Records one outcome into the current epoch.
    pub fn record(&self, outcome: SloOutcome) {
        let cur = self.current.load(Ordering::Relaxed) % self.epochs.len();
        let epoch = &self.epochs[cur];
        match outcome {
            SloOutcome::Good => epoch.good.fetch_add(1, Ordering::Relaxed),
            SloOutcome::Bad => epoch.bad.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Advances the epoch cursor, clearing the slot it lands on. Driven
    /// by the same rotation cadence as the latency windows.
    pub fn rotate(&self) {
        let next = (self.current.load(Ordering::Relaxed) + 1) % self.epochs.len();
        self.epochs[next].clear();
        self.current.store(next, Ordering::Relaxed);
    }

    /// Sums (good, bad) over the `n` most recent epochs.
    fn window(&self, n: usize) -> (u64, u64) {
        let len = self.epochs.len();
        let cur = self.current.load(Ordering::Relaxed) % len;
        let mut good = 0;
        let mut bad = 0;
        for back in 0..n.min(len) {
            let idx = (cur + len - back) % len;
            good += self.epochs[idx].good.load(Ordering::Relaxed);
            bad += self.epochs[idx].bad.load(Ordering::Relaxed);
        }
        (good, bad)
    }

    fn burn(&self, good: u64, bad: u64) -> f64 {
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / total as f64;
        bad_fraction / (1.0 - self.target)
    }

    /// A point-in-time reading over both windows.
    pub fn snapshot(&self) -> SloSnapshot {
        let (sg, sb) = self.window(self.short_epochs);
        let (lg, lb) = self.window(self.epochs.len());
        SloSnapshot {
            total: lg + lb,
            bad: lb,
            burn_short: self.burn(sg, sb),
            burn_long: self.burn(lg, lb),
            target: self.target,
            latency_objective_us: self.latency_objective_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_zero_with_no_traffic() {
        let t = SloTracker::new(6, 2, 0.99, 1000);
        let snap = t.snapshot();
        assert_eq!(snap.total, 0);
        assert_eq!(snap.burn_short, 0.0);
        assert_eq!(snap.burn_long, 0.0);
        assert!(!snap.burning(1.0));
    }

    #[test]
    fn burn_one_means_spending_budget_on_plan() {
        // target 0.99 → 1% budget; 1 bad in 100 burns at exactly 1.0.
        let t = SloTracker::new(6, 2, 0.99, 1000);
        for _ in 0..99 {
            t.record(SloOutcome::Good);
        }
        t.record(SloOutcome::Bad);
        let snap = t.snapshot();
        assert!(
            (snap.burn_long - 1.0).abs() < 1e-9,
            "burn {}",
            snap.burn_long
        );
    }

    #[test]
    fn classify_applies_latency_objective() {
        let t = SloTracker::new(6, 2, 0.99, 1000);
        assert_eq!(t.classify(true, 999), SloOutcome::Good);
        assert_eq!(t.classify(true, 1000), SloOutcome::Good);
        assert_eq!(t.classify(true, 1001), SloOutcome::Bad);
        assert_eq!(t.classify(false, 1), SloOutcome::Bad);
    }

    #[test]
    fn short_window_recovers_after_rotation() {
        // All-bad epoch, then rotate past the short window with good
        // traffic: short burn recovers, long burn still remembers.
        let t = SloTracker::new(6, 2, 0.9, 1000);
        for _ in 0..10 {
            t.record(SloOutcome::Bad);
        }
        assert!(t.snapshot().burning(1.0));
        for _ in 0..3 {
            t.rotate();
            for _ in 0..10 {
                t.record(SloOutcome::Good);
            }
        }
        let snap = t.snapshot();
        assert_eq!(snap.burn_short, 0.0, "short window is clean");
        assert!(snap.burn_long > 0.0, "long window remembers the bad epoch");
        assert!(!snap.burning(1.0), "multi-window condition no longer fires");
    }

    #[test]
    fn rotation_expires_bad_epochs_entirely() {
        let t = SloTracker::new(3, 1, 0.99, 1000);
        for _ in 0..10 {
            t.record(SloOutcome::Bad);
        }
        for _ in 0..3 {
            t.rotate();
        }
        let snap = t.snapshot();
        assert_eq!(snap.total, 0, "full rotation clears the ring");
    }
}
