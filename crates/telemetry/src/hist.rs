//! Lock-free log-linear latency histograms with windowed (ring-of-epochs)
//! decay.
//!
//! # Bucket layout
//!
//! HDR-style log-linear buckets: values below `2^SUB_BITS` get one bucket
//! each (exact), and every power-of-two range above that is split into
//! `2^SUB_BITS` equal sub-buckets. With [`SUB_BITS`]` = 5` that is 32
//! sub-buckets per octave, a worst-case relative error of `1/32 ≈ 3.1%`,
//! and [`NUM_BUCKETS`]` = 1920` buckets covering the whole `u64` range —
//! small enough to snapshot by copying, precise enough that p999 of a
//! microsecond latency distribution is meaningful.
//!
//! Recording is one relaxed `fetch_add` on a pre-computed index: safe to
//! call from every worker thread with no coordination, like the `obs`
//! registry's counters — but this histogram records **wall-clock
//! quantities** and therefore lives here, strictly outside the `obs`
//! registry whose snapshot feeds `render_deterministic` and the committed
//! goldens.
//!
//! # Quantiles
//!
//! [`HistSnapshot::quantile`] uses the nearest-rank definition: the
//! `q`-quantile of `N` observations is the value at rank
//! `max(1, ceil(q*N))` in sorted order, reported as the upper bound of
//! the bucket that rank falls in. The property test in this module checks
//! it against a sorted-vector oracle: the histogram quantile equals the
//! oracle value rounded up to its bucket bound, for every distribution
//! tried.
//!
//! # Windowing
//!
//! [`WindowedHistogram`] keeps a ring of epoch histograms. Recording goes
//! to the current epoch; [`rotate`](WindowedHistogram::rotate) advances
//! the cursor and zeroes the slot it lands on, so a snapshot (the sum of
//! all slots) always covers the last `slots × epoch-length` of traffic
//! and old observations fall out whole epochs at a time. A record racing
//! a rotation may land in the slot being cleared and be lost; telemetry
//! tolerates that one-in-an-epoch blip in exchange for staying lock-free.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-bucket resolution: `2^SUB_BITS` linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const LINEAR: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * (1 << SUB_BITS as usize);

/// The bucket index recording `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = (msb - u64::from(SUB_BITS)) as u32;
        let offset = ((v >> shift) & (LINEAR - 1)) as usize;
        (shift as usize + 1) * LINEAR as usize + offset
    }
}

/// The largest value that lands in bucket `idx` — what quantile
/// extraction reports, so reported quantiles never understate.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR as usize {
        idx as u64
    } else {
        let shift = (idx / LINEAR as usize - 1) as u32;
        let offset = (idx % LINEAR as usize) as u64;
        // Saturate at the top of the u64 range (the last bucket's upper
        // bound would otherwise overflow).
        ((LINEAR + offset + 1) << shift)
            .wrapping_sub(1)
            .max(1 << shift)
    }
}

/// A lock-free log-linear histogram of `u64` observations.
#[derive(Debug)]
pub struct LogLinearHistogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogLinearHistogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomic add).
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Zeroes every bucket (used when an epoch slot is recycled).
    pub fn clear(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Adds this histogram's counts into `acc` (windowed merges).
    fn accumulate(&self, acc: &mut HistSnapshot) {
        for (slot, c) in acc.counts.iter_mut().zip(self.counts.iter()) {
            *slot += c.load(Ordering::Relaxed);
        }
        acc.sum += self.sum.load(Ordering::Relaxed);
    }
}

/// A ring of epoch histograms: records go to the current epoch, reads
/// merge the whole ring, [`rotate`](Self::rotate) expires the oldest.
#[derive(Debug)]
pub struct WindowedHistogram {
    epochs: Vec<LogLinearHistogram>,
    current: AtomicUsize,
}

impl WindowedHistogram {
    /// A window of `slots` epochs (at least 1).
    pub fn new(slots: usize) -> Self {
        WindowedHistogram {
            epochs: (0..slots.max(1))
                .map(|_| LogLinearHistogram::new())
                .collect(),
            current: AtomicUsize::new(0),
        }
    }

    /// Number of epoch slots in the ring.
    pub fn slots(&self) -> usize {
        self.epochs.len()
    }

    /// Records one observation into the current epoch.
    pub fn record(&self, v: u64) {
        let cur = self.current.load(Ordering::Relaxed) % self.epochs.len();
        self.epochs[cur].record(v);
    }

    /// Advances the epoch cursor, clearing the slot it lands on (which
    /// held the oldest epoch). Call on a fixed cadence from one thread.
    pub fn rotate(&self) {
        let next = (self.current.load(Ordering::Relaxed) + 1) % self.epochs.len();
        self.epochs[next].clear();
        self.current.store(next, Ordering::Relaxed);
    }

    /// The merged histogram over the whole window.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut acc = HistSnapshot::empty();
        for epoch in &self.epochs {
            epoch.accumulate(&mut acc);
        }
        acc
    }
}

/// A point-in-time (or merged-window) copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub counts: Vec<u64>,
    /// Sum of all recorded values (for mean / Prometheus `_sum`).
    pub sum: u64,
}

impl HistSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        HistSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The nearest-rank `q`-quantile, as the upper bound of the bucket
    /// the rank falls in; 0 when empty. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// The largest recorded value, rounded up to its bucket bound.
    pub fn max(&self) -> u64 {
        self.quantile(1.0)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }

    /// Count of observations whose bucket upper bound is `<= bound` —
    /// the cumulative `le` series for Prometheus exposition. Values are
    /// attributed to their bucket bound, so the result can overstate by
    /// at most one bucket's relative error (≈3%), never understate.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(idx, _)| bucket_upper(*idx) <= bound)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every probe value lands in a bucket whose range contains it:
        // upper bound >= value, and the previous bucket's upper < value.
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < v,
                    "value {v} fits an earlier bucket"
                );
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for idx in 1..NUM_BUCKETS {
            let upper = bucket_upper(idx);
            assert!(
                upper > prev,
                "bounds not increasing at {idx}: {upper} <= {prev}"
            );
            prev = upper;
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_width() {
        for &v in &[100u64, 999, 12_345, 1_000_000, 123_456_789] {
            let upper = bucket_upper(bucket_index(v));
            let err = (upper - v) as f64 / v as f64;
            assert!(
                err <= 1.0 / LINEAR as f64 + 1e-9,
                "error {err} too large for {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        // Nearest-rank p50 of 1..=1000 is 500; the histogram reports its
        // bucket upper bound.
        assert_eq!(snap.quantile(0.50), bucket_upper(bucket_index(500)));
        assert_eq!(snap.quantile(0.99), bucket_upper(bucket_index(990)));
        assert_eq!(snap.quantile(0.999), bucket_upper(bucket_index(999)));
        assert_eq!(snap.max(), bucket_upper(bucket_index(1000)));
        assert_eq!(snap.sum, 500_500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = LogLinearHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.cumulative_le(u64::MAX), 0);
    }

    #[test]
    fn windowed_rotation_expires_old_epochs() {
        let w = WindowedHistogram::new(3);
        w.record(100);
        assert_eq!(w.snapshot().count(), 1);
        w.rotate();
        w.record(200);
        assert_eq!(w.snapshot().count(), 2, "window covers both epochs");
        w.rotate();
        w.rotate(); // cursor returns to (and clears) the slot holding 100
        assert_eq!(w.snapshot().count(), 1, "first epoch expired");
        w.rotate();
        assert_eq!(w.snapshot().count(), 0, "second epoch expired");
    }

    #[test]
    fn cumulative_le_matches_manual_count() {
        let h = LogLinearHistogram::new();
        for v in [1u64, 5, 10, 100, 1000, 100_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        // Bounds below hold exactly because each probe's bucket upper
        // bound stays under the next cumulative bound tested.
        assert_eq!(snap.cumulative_le(1), 1);
        assert_eq!(snap.cumulative_le(16), 3);
        assert_eq!(snap.cumulative_le(2048), 5);
        assert_eq!(snap.cumulative_le(u64::MAX), 6);
    }
}
