//! Property test: log-linear histogram quantiles against a
//! sorted-vector oracle (satellite of ISSUE 7).
//!
//! The contract under test: for any distribution of `u64` observations
//! and any quantile `q`, the histogram reports exactly the bucket upper
//! bound of the oracle's nearest-rank value — never a different bucket,
//! never an understated value.

use lockbind_telemetry::hist::{bucket_index, bucket_upper, LogLinearHistogram, WindowedHistogram};
use proptest::prelude::*;

/// Nearest-rank quantile over a sorted vector: value at rank
/// `max(1, ceil(q*N))`, 1-based.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn histogram_quantile_matches_sorted_oracle(
        mut values in proptest::collection::vec(0u64..2_000_000, 1..400),
        q_mil in 0u32..=1000,
    ) {
        let q = f64::from(q_mil) / 1000.0;
        let h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let expected = bucket_upper(bucket_index(oracle_quantile(&values, q)));
        prop_assert_eq!(h.snapshot().quantile(q), expected);
    }

    #[test]
    fn quantile_never_understates(
        values in proptest::collection::vec(0u64..u64::MAX, 1..200),
        q_mil in 0u32..=1000,
    ) {
        // The reported quantile is always >= the oracle's exact value:
        // bucket attribution rounds up, never down.
        let q = f64::from(q_mil) / 1000.0;
        let h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert!(h.snapshot().quantile(q) >= oracle_quantile(&sorted, q));
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(snap.quantile(pair[0]) <= snap.quantile(pair[1]));
        }
    }

    #[test]
    fn windowed_merge_equals_flat_histogram(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        // Recording across an epoch rotation (without expiry) yields
        // the same merged snapshot as one flat histogram.
        let w = WindowedHistogram::new(4);
        let flat = LogLinearHistogram::new();
        for &v in &a {
            w.record(v);
            flat.record(v);
        }
        w.rotate();
        for &v in &b {
            w.record(v);
            flat.record(v);
        }
        prop_assert_eq!(w.snapshot(), flat.snapshot());
    }
}
