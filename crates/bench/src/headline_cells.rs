//! The combined headline grid: error-ratio cells plus end-to-end
//! locked-simulation and SAT-attack cells.
//!
//! `headline --profile` is the canonical observability entry point, so its
//! grid must exercise every pipeline stage the profiler reports on:
//! scheduling and binding (inside kernel preparation), matching (inside the
//! binding algorithms), the locked-datapath simulation, and the SAT attack.
//! The plain [`ErrorCell`](crate::ErrorCell) grid covers the first three;
//! this module adds [`ImpactCell`] (stage `locked-sim`) and [`SatCell`]
//! (stage `sat-attack`) and wraps all three in one [`HeadlineCell`] job
//! type so a single engine run covers the full pipeline.

use lockbind_attacks::{sat_attack_with_cancel, AttackConfig, AttackStop};
use lockbind_core::locked_sim::{output_corruption, wrong_keys};
use lockbind_core::{codesign_heuristic_cancellable, realize_locked_modules};
use lockbind_engine::{CellResult, Job, JobCtx};
use lockbind_hls::{FuClass, FuId};
use lockbind_locking::{
    lock_anti_sat, lock_critical_minterms, lock_permutation, lock_rll, LockError, LockedNetlist,
};
use lockbind_mediabench::Kernel;
use lockbind_netlist::builders::adder_fu;

use crate::grid::{cached_prepared, ErrorCell};
use crate::{error_grid, ErrorRecord, ExperimentParams};

/// One kernel of the end-to-end locked-simulation measurement: co-design a
/// lock, realize it as gate-level modules, and replay the workload with a
/// wrong key to measure output corruption (the `locked-sim` stage).
#[derive(Debug, Clone)]
pub struct ImpactCell {
    /// The kernel under test.
    pub kernel: Kernel,
    /// Profiling frames for kernel preparation and replay.
    pub frames: usize,
    /// Kernel-preparation seed.
    pub seed: u64,
}

/// Output of an [`ImpactCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactRecord {
    /// Kernel name.
    pub kernel: String,
    /// Fraction of frames with at least one corrupted primary output.
    pub frame_rate: f64,
    /// Frames with corrupted outputs.
    pub frames_corrupted: u64,
    /// Total frames replayed.
    pub frames_total: u64,
}

impl Job for ImpactCell {
    type Output = ImpactRecord;

    fn label(&self) -> String {
        format!("{}/locked-sim", self.kernel.name())
    }

    fn stage(&self) -> &'static str {
        "locked-sim"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let prepared = cached_prepared(ctx.cache, self.kernel, self.frames, self.seed);
        let bench = self.kernel.benchmark(self.frames, self.seed);
        let class = if prepared.alloc.count(FuClass::Multiplier) > 0 {
            FuClass::Multiplier
        } else {
            FuClass::Adder
        };
        let candidates = prepared.candidates(class, 8);
        let design = codesign_heuristic_cancellable(
            &prepared.dfg,
            &prepared.schedule,
            &prepared.alloc,
            &prepared.profile,
            &[FuId::new(class, 0)],
            2.min(candidates.len()),
            &candidates,
            &ctx.cancel,
        )
        .map_err(|e| e.to_string())?;
        // `--check` mode: lint the co-designed lock end to end — the
        // certificate-assignment pass proves `design.binding` is the
        // certified Eqn. 3 optimum for `design.spec`.
        if ctx.check {
            crate::check::lint_locked_binding(
                &prepared,
                Some(&design.binding),
                &design.spec,
                &candidates,
            )?;
        }
        let modules = realize_locked_modules(&design.spec, prepared.dfg.width())
            .map_err(|e| e.to_string())?;
        // `--audit` mode: score every realized locked module's structural
        // leakage (findings land in the `audit.*` run metrics; only an
        // error-severity finding fails the cell).
        if ctx.audit {
            for (_, locked) in &modules {
                crate::check::audit_locked_netlist(locked.netlist())?;
            }
        }
        let keys = wrong_keys(&modules, 1);
        let corruption = output_corruption(
            &prepared.dfg,
            &design.binding,
            &modules,
            &keys,
            &bench.trace,
        )
        .map_err(|e| e.to_string())?;
        Ok(ImpactRecord {
            kernel: prepared.name.clone(),
            frame_rate: corruption.frame_rate(),
            frames_corrupted: corruption.frames_corrupted,
            frames_total: corruption.frames_total,
        })
    }
}

/// Locking schemes exercised by the SAT-attack cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatScheme {
    /// Critical-minterm (point-function) locking — SAT-resilient.
    CriticalMinterm,
    /// Random logic locking — broken in a handful of DIPs.
    Rll,
    /// Anti-SAT — iteration count exponential in the input width.
    AntiSat,
    /// Permutation-network locking — per-iteration hardness.
    Permutation,
}

impl SatScheme {
    /// All schemes, in grid order.
    pub const ALL: [SatScheme; 4] = [
        SatScheme::CriticalMinterm,
        SatScheme::Rll,
        SatScheme::AntiSat,
        SatScheme::Permutation,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            SatScheme::CriticalMinterm => "critical-minterm",
            SatScheme::Rll => "rll",
            SatScheme::AntiSat => "anti-sat",
            SatScheme::Permutation => "permutation",
        }
    }

    fn lock(self, width: u32) -> Result<LockedNetlist, LockError> {
        let adder = adder_fu(width);
        match self {
            SatScheme::CriticalMinterm => lock_critical_minterms(&adder, &[5, 11]),
            SatScheme::Rll => lock_rll(&adder, 6, 11),
            SatScheme::AntiSat => lock_anti_sat(&adder),
            SatScheme::Permutation => lock_permutation(&adder, 2),
        }
    }
}

/// One locking scheme of the SAT-attack measurement (the `sat-attack`
/// stage): lock a small adder FU and run the full oracle-guided attack.
#[derive(Debug, Clone)]
pub struct SatCell {
    /// The locking scheme under attack.
    pub scheme: SatScheme,
    /// Operand width of the adder FU (small widths keep attacks fast).
    pub width: u32,
}

/// Output of a [`SatCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct SatRecord {
    /// Scheme label.
    pub scheme: &'static str,
    /// Key bits of the locked module.
    pub key_bits: usize,
    /// DIP iterations the attack performed.
    pub iterations: u64,
    /// Whether a functionally-correct key was extracted.
    pub success: bool,
    /// CDCL conflicts across the whole attack.
    pub conflicts: u64,
    /// CDCL propagations across the whole attack.
    pub propagations: u64,
    /// Clause-arena garbage collections the solver performed.
    pub gc_runs: u64,
}

impl Job for SatCell {
    type Output = SatRecord;

    fn label(&self) -> String {
        format!("{}/sat-attack", self.scheme.label())
    }

    fn stage(&self) -> &'static str {
        "sat-attack"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let locked = self.scheme.lock(self.width).map_err(|e| e.to_string())?;
        // `--check` mode: lint the locked gate graph before attacking it.
        if ctx.check {
            crate::check::lint_netlist(locked.netlist())?;
        }
        // `--audit` mode: the structural-leakage scorecard of the scheme
        // under attack (warnings expected for weak schemes; errors fail).
        if ctx.audit {
            crate::check::audit_locked_netlist(locked.netlist())?;
        }
        let out = sat_attack_with_cancel(&locked, &AttackConfig::default(), &ctx.cancel);
        if out.stop == AttackStop::Interrupted {
            // Surface the interruption as a cell error so the engine can
            // classify it (deadline fired → `CellResult::TimedOut`).
            return Err(format!(
                "sat attack interrupted after {} iterations",
                out.iterations
            ));
        }
        Ok(SatRecord {
            scheme: self.scheme.label(),
            key_bits: locked.key_bits(),
            iterations: out.iterations,
            success: out.success,
            conflicts: out.solver_stats.conflicts,
            propagations: out.solver_stats.propagations,
            gc_runs: out.solver_stats.gc_runs,
        })
    }
}

/// One cell of the combined headline grid.
#[derive(Debug, Clone)]
pub enum HeadlineCell {
    /// An error-ratio cell (stage `error-cell`).
    Error(ErrorCell),
    /// A locked-simulation cell (stage `locked-sim`).
    Impact(ImpactCell),
    /// A SAT-attack cell (stage `sat-attack`).
    Sat(SatCell),
}

/// Output of a [`HeadlineCell`], mirroring its variant.
#[derive(Debug, Clone)]
pub enum HeadlineOutput {
    /// Error-ratio records.
    Error(Vec<ErrorRecord>),
    /// A locked-simulation record.
    Impact(ImpactRecord),
    /// A SAT-attack record.
    Sat(SatRecord),
}

impl Job for HeadlineCell {
    type Output = HeadlineOutput;

    fn label(&self) -> String {
        match self {
            HeadlineCell::Error(c) => c.label(),
            HeadlineCell::Impact(c) => c.label(),
            HeadlineCell::Sat(c) => c.label(),
        }
    }

    fn stage(&self) -> &'static str {
        match self {
            HeadlineCell::Error(c) => c.stage(),
            HeadlineCell::Impact(c) => c.stage(),
            HeadlineCell::Sat(c) => c.stage(),
        }
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        match self {
            HeadlineCell::Error(c) => c.run(ctx).map(HeadlineOutput::Error),
            HeadlineCell::Impact(c) => c.run(ctx).map(HeadlineOutput::Impact),
            HeadlineCell::Sat(c) => c.run(ctx).map(HeadlineOutput::Sat),
        }
    }

    fn encode_output(&self, output: &Self::Output) -> Option<String> {
        Some(crate::codec::encode_headline_output(output))
    }

    fn decode_output(&self, payload: &str) -> Option<Self::Output> {
        crate::codec::decode_headline_output(payload)
    }
}

/// Builds the combined headline grid: the full error-ratio grid, one
/// locked-simulation cell per kernel, and one SAT-attack cell per scheme.
pub fn headline_grid(
    kernels: &[Kernel],
    frames: usize,
    seed: u64,
    params: &ExperimentParams,
) -> Vec<HeadlineCell> {
    let mut cells: Vec<HeadlineCell> = error_grid(kernels, frames, seed, params)
        .into_iter()
        .map(HeadlineCell::Error)
        .collect();
    cells.extend(kernels.iter().map(|&kernel| {
        HeadlineCell::Impact(ImpactCell {
            kernel,
            frames,
            seed,
        })
    }));
    cells.extend(
        SatScheme::ALL
            .into_iter()
            .map(|scheme| HeadlineCell::Sat(SatCell { scheme, width: 3 })),
    );
    cells
}

/// Per-stage record lists split back out of combined-grid results, plus
/// `(cell, message)` failures.
pub type HeadlineRecords = (
    Vec<ErrorRecord>,
    Vec<ImpactRecord>,
    Vec<SatRecord>,
    Vec<(String, String)>,
);

/// Splits in-order combined-grid results back into per-stage record lists
/// plus `(cell, message)` failures.
pub fn collect_headline_records(results: &[CellResult<HeadlineOutput>]) -> HeadlineRecords {
    let mut errors = Vec::new();
    let mut impacts = Vec::new();
    let mut sats = Vec::new();
    let mut failures = Vec::new();
    for result in results {
        match result {
            CellResult::Ok { output, .. } => match output {
                HeadlineOutput::Error(records) => errors.extend(records.iter().cloned()),
                HeadlineOutput::Impact(record) => impacts.push(record.clone()),
                HeadlineOutput::Sat(record) => sats.push(record.clone()),
            },
            CellResult::Failed { cell, message } => {
                failures.push((cell.clone(), message.clone()));
            }
            CellResult::TimedOut { cell, message } => {
                failures.push((cell.clone(), format!("timed out: {message}")));
            }
        }
    }
    (errors, impacts, sats, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_engine::{Engine, EngineConfig};

    fn small_params() -> ExperimentParams {
        ExperimentParams {
            num_candidates: 4,
            max_locked_fus: 1,
            max_locked_inputs: 1,
            max_assignments: 20,
            optimal_budget: 50,
            seed: 7,
        }
    }

    #[test]
    fn combined_grid_covers_all_stages() {
        let cells = headline_grid(&[Kernel::Fir], 40, 5, &small_params());
        let stages: std::collections::BTreeSet<&str> = cells.iter().map(|c| c.stage()).collect();
        assert!(stages.contains("error-cell"));
        assert!(stages.contains("locked-sim"));
        assert!(stages.contains("sat-attack"));
    }

    #[test]
    fn combined_grid_runs_end_to_end() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            root_seed: 5,
            fail_fast: false,
            progress: false,
            check: true,
            ..EngineConfig::default()
        });
        let cells = headline_grid(&[Kernel::Fir], 40, 5, &small_params());
        let report = engine.run(&cells);
        let (errors, impacts, sats, failures) = collect_headline_records(&report.results);
        assert!(failures.is_empty(), "failures: {failures:?}");
        assert!(!errors.is_empty());
        assert_eq!(impacts.len(), 1);
        assert_eq!(sats.len(), SatScheme::ALL.len());
        assert!(sats.iter().all(|s| s.success));
        // Corruption may be fully masked on tiny workloads (that masking is
        // the paper's motivation); the cell still must replay every frame.
        assert_eq!(impacts[0].frames_total, 40);
        assert!(impacts[0].frames_corrupted <= impacts[0].frames_total);
    }
}
