//! Engine-backed experiment grids.
//!
//! The paper's figures are grids of independent cells; this module models
//! them as [`lockbind_engine::Job`]s so the execution engine can run them
//! on a worker pool. Two cell types exist:
//!
//! * [`ErrorCell`] — one `(kernel, class, locked_fus, locked_inputs)`
//!   configuration of the Fig. 4 / Fig. 5 error-ratio experiment.
//! * [`OverheadCell`] — one kernel of the Fig. 6 overhead measurement.
//!
//! Cells share their expensive locking-independent inputs through the
//! engine's artifact cache: the [`PreparedKernel`] (schedule, allocation,
//! profiles) is memoized per `(kernel, frames, seed)`, and the
//! [`ClassContext`] (candidate list plus baseline bindings) per
//! `(kernel, frames, seed, class, num_candidates)`.
//!
//! Determinism: every cell is a pure function of its own fields, so the
//! flattened in-order outputs of [`error_grid`] equal the serial
//! [`run_error_experiment`](crate::run_error_experiment) loop exactly, at
//! any worker count.

use std::sync::Arc;

use lockbind_core::{CoreError, LockingSpec};
use lockbind_engine::{ArtifactCache, CacheKey, CellResult, Job, JobCtx};
use lockbind_hls::{FuClass, FuId};
use lockbind_mediabench::Kernel;
use lockbind_obs as obs;

use crate::codec;
use crate::errors_experiment::{run_error_cell_cancellable, ClassContext};
use crate::overhead::{measure_overhead, OverheadRecord};
use crate::{ErrorRecord, ExperimentParams, PreparedKernel};

/// Returns the cached [`PreparedKernel`] for `(kernel, frames, seed)`,
/// building it on first use.
pub fn cached_prepared(
    cache: &ArtifactCache,
    kernel: Kernel,
    frames: usize,
    seed: u64,
) -> Arc<PreparedKernel> {
    let key = CacheKey::new("prepared-kernel")
        .push_str(kernel.name())
        .push_usize(frames)
        .push_u64(seed);
    cache.get_or_insert_with(key, || {
        // The single-flight cache builds each key exactly once, so this span
        // and the counters inside fire once per (kernel, frames, seed) at
        // any worker count.
        let _span = obs::span!("prepare.kernel", kernel = kernel.name(), frames = frames);
        PreparedKernel::new(kernel, frames, seed)
    })
}

type ClassContextResult = Result<Option<ClassContext>, CoreError>;

/// Returns the cached [`ClassContext`] for one `(kernel, class)` of a
/// prepared kernel, building it on first use.
pub fn cached_class_context(
    cache: &ArtifactCache,
    prepared: &PreparedKernel,
    kernel: Kernel,
    frames: usize,
    seed: u64,
    class: FuClass,
    num_candidates: usize,
) -> Arc<ClassContextResult> {
    let key = CacheKey::new("class-context")
        .push_str(kernel.name())
        .push_usize(frames)
        .push_u64(seed)
        .push_str(&format!("{class:?}"))
        .push_usize(num_candidates);
    cache.get_or_insert_with(key, || {
        let _span = obs::span!("prepare.class_context", kernel = kernel.name());
        ClassContext::build(prepared, class, num_candidates)
    })
}

/// One cell of the error-ratio experiment grid.
#[derive(Debug, Clone)]
pub struct ErrorCell {
    /// The kernel under test.
    pub kernel: Kernel,
    /// Profiling frames for kernel preparation.
    pub frames: usize,
    /// Kernel-preparation seed.
    pub seed: u64,
    /// FU class being locked.
    pub class: FuClass,
    /// Number of locked FUs.
    pub locked_fus: usize,
    /// Locked inputs per FU.
    pub locked_inputs: usize,
    /// Experiment parameters.
    pub params: ExperimentParams,
}

impl Job for ErrorCell {
    type Output = Vec<ErrorRecord>;

    fn label(&self) -> String {
        format!(
            "{}/{:?}/L{}xm{}",
            self.kernel.name(),
            self.class,
            self.locked_fus,
            self.locked_inputs
        )
    }

    fn stage(&self) -> &'static str {
        "error-cell"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let prepared = cached_prepared(ctx.cache, self.kernel, self.frames, self.seed);
        let class_ctx = cached_class_context(
            ctx.cache,
            &prepared,
            self.kernel,
            self.frames,
            self.seed,
            self.class,
            self.params.num_candidates,
        );
        match class_ctx.as_ref() {
            Err(e) => Err(format!("class context: {e}")),
            Ok(None) => Ok(Vec::new()),
            Ok(Some(cc)) => {
                let records = run_error_cell_cancellable(
                    &prepared,
                    cc,
                    &self.params,
                    self.locked_fus,
                    self.locked_inputs,
                    &ctx.cancel,
                )
                .map_err(|e| e.to_string())?;
                // `--check` mode: lint the cell's *representative* locked
                // artifact (first combination assignment — the per-sweep
                // bindings are far too many to lint individually). An
                // infeasible configuration produced no records and has no
                // representative.
                if ctx.check && !records.is_empty() {
                    let fus: Vec<FuId> = (0..self.locked_fus)
                        .map(|i| FuId::new(self.class, i))
                        .collect();
                    let minterms = cc.candidates[..self.locked_inputs].to_vec();
                    let spec = LockingSpec::new(
                        &prepared.alloc,
                        fus.into_iter().map(|fu| (fu, minterms.clone())).collect(),
                    )
                    .map_err(|e| format!("check spec: {e}"))?;
                    crate::check::lint_locked_binding(&prepared, None, &spec, &cc.candidates)?;
                }
                // `--audit` mode: realize the representative lock as
                // gate-level modules and score their structural leakage.
                if ctx.audit && !records.is_empty() {
                    let fus: Vec<FuId> = (0..self.locked_fus)
                        .map(|i| FuId::new(self.class, i))
                        .collect();
                    let minterms = cc.candidates[..self.locked_inputs].to_vec();
                    let spec = LockingSpec::new(
                        &prepared.alloc,
                        fus.into_iter().map(|fu| (fu, minterms.clone())).collect(),
                    )
                    .map_err(|e| format!("audit spec: {e}"))?;
                    let modules =
                        lockbind_core::realize_locked_modules(&spec, prepared.dfg.width())
                            .map_err(|e| format!("audit realize: {e}"))?;
                    for (_, locked) in &modules {
                        crate::check::audit_locked_netlist(locked.netlist())?;
                    }
                }
                Ok(records)
            }
        }
    }

    fn encode_output(&self, output: &Self::Output) -> Option<String> {
        Some(codec::encode_error_records(output))
    }

    fn decode_output(&self, payload: &str) -> Option<Self::Output> {
        codec::decode_error_records(payload)
    }
}

/// Builds the full error-experiment grid over `kernels`, in the exact
/// order of the serial loops: kernel, then class, then locked FUs, then
/// locked inputs. Infeasible cells stay in the grid and return empty
/// record lists, keeping the flattened output identical to the serial run.
pub fn error_grid(
    kernels: &[Kernel],
    frames: usize,
    seed: u64,
    params: &ExperimentParams,
) -> Vec<ErrorCell> {
    let mut cells = Vec::new();
    for &kernel in kernels {
        for class in FuClass::ALL {
            for locked_fus in 1..=params.max_locked_fus {
                for locked_inputs in 1..=params.max_locked_inputs {
                    cells.push(ErrorCell {
                        kernel,
                        frames,
                        seed,
                        class,
                        locked_fus,
                        locked_inputs,
                        params: *params,
                    });
                }
            }
        }
    }
    cells
}

/// Flattens in-order grid results into the serial record sequence,
/// separating failed cells out as `(cell, message)` pairs.
pub fn collect_error_records(
    results: &[CellResult<Vec<ErrorRecord>>],
) -> (Vec<ErrorRecord>, Vec<(String, String)>) {
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for result in results {
        match result {
            CellResult::Ok { output, .. } => records.extend(output.iter().cloned()),
            CellResult::Failed { cell, message } => {
                failures.push((cell.clone(), message.clone()));
            }
            CellResult::TimedOut { cell, message } => {
                failures.push((cell.clone(), format!("timed out: {message}")));
            }
        }
    }
    (records, failures)
}

/// One kernel of the Fig. 6 overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// The kernel under test.
    pub kernel: Kernel,
    /// Profiling frames for kernel preparation.
    pub frames: usize,
    /// Kernel-preparation seed.
    pub seed: u64,
    /// Candidate locked inputs per class.
    pub num_candidates: usize,
}

impl Job for OverheadCell {
    type Output = Vec<OverheadRecord>;

    fn label(&self) -> String {
        format!("{}/overhead", self.kernel.name())
    }

    fn stage(&self) -> &'static str {
        "overhead"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let prepared = cached_prepared(ctx.cache, self.kernel, self.frames, self.seed);
        measure_overhead(&prepared, self.num_candidates).map_err(|e| e.to_string())
    }

    fn encode_output(&self, output: &Self::Output) -> Option<String> {
        Some(codec::encode_overhead_records(output))
    }

    fn decode_output(&self, payload: &str) -> Option<Self::Output> {
        codec::decode_overhead_records(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_engine::{Engine, EngineConfig};

    fn small_params() -> ExperimentParams {
        ExperimentParams {
            num_candidates: 4,
            max_locked_fus: 2,
            max_locked_inputs: 2,
            max_assignments: 40,
            optimal_budget: 100,
            seed: 7,
        }
    }

    fn quiet_engine(threads: usize) -> Engine {
        Engine::new(EngineConfig {
            threads,
            root_seed: 5,
            fail_fast: false,
            progress: false,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn grid_enumerates_in_serial_order() {
        let params = small_params();
        let cells = error_grid(&[Kernel::Fir, Kernel::EcbEnc4], 40, 5, &params);
        // 2 kernels x 2 classes x 2 fu-counts x 2 input-counts.
        assert_eq!(cells.len(), 16);
        assert_eq!(cells[0].label(), "fir/Adder/L1xm1");
        assert_eq!(cells[1].locked_inputs, 2);
        assert_eq!(cells[2].locked_fus, 2);
    }

    #[test]
    fn grid_matches_serial_experiment() {
        let params = small_params();
        let frames = 40;
        let seed = 5;
        let kernels = [Kernel::Fir];
        let engine = quiet_engine(2);
        let report = engine.run(&error_grid(&kernels, frames, seed, &params));
        let (records, failures) = collect_error_records(&report.results);
        assert!(failures.is_empty(), "failures: {failures:?}");

        let prepared = PreparedKernel::new(Kernel::Fir, frames, seed);
        let serial = crate::run_error_experiment(&prepared, &params).expect("serial runs");
        assert_eq!(records.len(), serial.len());
        for (grid_record, serial_record) in records.iter().zip(&serial) {
            assert_eq!(grid_record.kernel, serial_record.kernel);
            assert_eq!(grid_record.class, serial_record.class);
            assert_eq!(grid_record.locked_fus, serial_record.locked_fus);
            assert_eq!(grid_record.locked_inputs, serial_record.locked_inputs);
            assert_eq!(grid_record.algo, serial_record.algo);
            assert_eq!(grid_record.vs_area, serial_record.vs_area);
            assert_eq!(grid_record.vs_power, serial_record.vs_power);
            assert_eq!(grid_record.mean_errors, serial_record.mean_errors);
        }
        // The grid shares one PreparedKernel + per-class contexts.
        let stats = engine.cache().stats();
        assert!(stats.hits > 0, "cells must reuse cached artifacts");
        assert!(stats.entries <= 3, "1 kernel + at most 2 class contexts");
    }

    #[test]
    fn error_cell_outputs_round_trip_through_the_checkpoint_codec() {
        let params = small_params();
        let frames = 40;
        let seed = 5;
        let cells = error_grid(&[Kernel::Fir], frames, seed, &params);
        let engine = quiet_engine(1);
        let report = engine.run(&cells);
        for (cell, result) in cells.iter().zip(&report.results) {
            let output = result.output().expect("cell ok");
            let payload = cell.encode_output(output).expect("encodes");
            let decoded = cell.decode_output(&payload).expect("decodes");
            assert_eq!(format!("{decoded:?}"), format!("{output:?}"));
        }
    }

    #[test]
    fn error_grid_lints_clean_under_check_mode() {
        let params = small_params();
        let engine = Engine::new(EngineConfig {
            threads: 2,
            root_seed: 5,
            fail_fast: false,
            progress: false,
            check: true,
            ..EngineConfig::default()
        });
        let report = engine.run(&error_grid(&[Kernel::Fir], 40, 5, &params));
        let (_, failures) = collect_error_records(&report.results);
        assert!(failures.is_empty(), "failures: {failures:?}");
        assert_eq!(report.metrics.cells_check_failed, 0);
        assert!(report.metrics.check_codes.is_empty());
    }

    #[test]
    fn multiply_free_kernels_produce_empty_multiplier_cells() {
        let params = small_params();
        let engine = quiet_engine(1);
        let cells = error_grid(&[Kernel::EcbEnc4], 40, 5, &params);
        let report = engine.run(&cells);
        let (records, failures) = collect_error_records(&report.results);
        assert!(failures.is_empty(), "failures: {failures:?}");
        assert!(records.iter().all(|r| r.class == FuClass::Adder));
    }
}
