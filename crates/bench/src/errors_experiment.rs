//! The Fig. 4 / Fig. 5 error-ratio experiment.
//!
//! For every locking configuration ({1,2,3} locked FUs x {1,2,3} locked
//! inputs) and every combination of candidate locked inputs, a circuit is
//! bound with each security-aware algorithm and with the area-/power-aware
//! baselines under the *identical* locking configuration; the ratio of
//! expected application errors (Eqn. 2) quantifies the security gain.
//!
//! Exact reproduction notes (documented deviations, see EXPERIMENTS.md):
//!
//! * Combination assignments across multiple locked FUs grow as
//!   `C(10, m)^L` (1.7M at L=3, m=3); when the count exceeds
//!   [`ExperimentParams::max_assignments`] a deterministic pseudo-random
//!   subsample is used instead of full enumeration.
//! * Ratios use Laplace smoothing `(1 + E_sec) / (1 + E_base)` because the
//!   baselines frequently achieve *zero* expected errors for unlucky
//!   combinations (the paper does not state its convention).

use lockbind_core::{
    bind_area_aware, bind_power_aware, codesign_heuristic_cancellable,
    codesign_optimal_cancellable, combinations, CoreError, ErrorSweep,
};
use lockbind_hls::{Binding, FuClass, FuId, Minterm, OccurrenceProfile};
use lockbind_obs as obs;
use lockbind_resil::CancelToken;

use crate::PreparedKernel;

/// Which security-aware algorithm produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityAlgo {
    /// Problem 1: locked inputs fixed before binding (Sec. IV).
    ObfAware,
    /// Problem 2, P-time heuristic (Sec. V-A).
    CoDesignHeuristic,
    /// Problem 2, exhaustive optimal (Sec. V-B); only run where tractable.
    CoDesignOptimal,
}

impl SecurityAlgo {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            SecurityAlgo::ObfAware => "obf-aware",
            SecurityAlgo::CoDesignHeuristic => "codesign-heur",
            SecurityAlgo::CoDesignOptimal => "codesign-opt",
        }
    }
}

/// One experiment cell: a kernel, FU class, locking configuration, and
/// algorithm, with mean error ratios against both baselines.
#[derive(Debug, Clone)]
pub struct ErrorRecord {
    /// Kernel name (paper x-axis label).
    pub kernel: String,
    /// FU class bound/locked (adders and multipliers are treated
    /// separately, as in the paper).
    pub class: FuClass,
    /// Number of locked FUs (1..=3).
    pub locked_fus: usize,
    /// Locked inputs per FU (1..=3).
    pub locked_inputs: usize,
    /// The security-aware algorithm.
    pub algo: SecurityAlgo,
    /// Mean smoothed ratio of expected errors vs area-aware binding.
    pub vs_area: f64,
    /// Mean smoothed ratio vs power-aware binding.
    pub vs_power: f64,
    /// Mean absolute expected errors of the security-aware configuration.
    pub mean_errors: f64,
    /// Combination assignments evaluated.
    pub samples: usize,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Candidate locked inputs per class (paper: 10).
    pub num_candidates: usize,
    /// Locked-FU counts to sweep (paper: 1..=3).
    pub max_locked_fus: usize,
    /// Locked-input counts to sweep (paper: 1..=3).
    pub max_locked_inputs: usize,
    /// Cap on enumerated combination assignments per configuration; beyond
    /// this a seeded subsample is drawn.
    pub max_assignments: usize,
    /// Run the exhaustive optimal co-design when its search fits this many
    /// binding evaluations.
    pub optimal_budget: u128,
    /// Subsampling seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            num_candidates: 10,
            max_locked_fus: 3,
            max_locked_inputs: 3,
            max_assignments: 1500,
            optimal_budget: 20_000,
            seed: 0x0DAC_2021,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Laplace-smoothed error ratio.
fn ratio(sec: u64, base: u64) -> f64 {
    (1.0 + sec as f64) / (1.0 + base as f64)
}

/// Locking-independent per-(kernel, class) context: the candidate locked
/// inputs plus the area-/power-aware baseline bindings.
///
/// Building it is the expensive, *shared* part of every cell of a class —
/// under the execution engine it is built once per (kernel, class) and
/// memoized in the artifact cache.
#[derive(Debug, Clone)]
pub struct ClassContext {
    /// The FU class this context covers.
    pub class: FuClass,
    /// The paper's candidate locked-input list for this class.
    pub candidates: Vec<Minterm>,
    /// Area-aware baseline binding (locking-independent).
    pub area: Binding,
    /// Power-aware baseline binding (locking-independent).
    pub power: Binding,
}

impl ClassContext {
    /// Builds the context, or `None` when the kernel has no candidates for
    /// `class` (e.g. the multiplier class of a multiply-free kernel).
    ///
    /// # Errors
    /// Propagates baseline binding errors from `lockbind-core`.
    pub fn build(
        prepared: &PreparedKernel,
        class: FuClass,
        num_candidates: usize,
    ) -> Result<Option<ClassContext>, CoreError> {
        let candidates = prepared.candidates(class, num_candidates);
        if candidates.is_empty() {
            return Ok(None);
        }
        let area = bind_area_aware(&prepared.dfg, &prepared.schedule, &prepared.alloc)?;
        let power = bind_power_aware(
            &prepared.dfg,
            &prepared.schedule,
            &prepared.alloc,
            &prepared.switching,
        )?;
        Ok(Some(ClassContext {
            class,
            candidates,
            area,
            power,
        }))
    }
}

/// Evaluates one experiment cell — one `(locked_fus, locked_inputs)`
/// configuration of one class — and returns its records.
///
/// This is a pure function of its arguments: no global state, no interior
/// ordering dependence, which is what lets the execution engine run cells
/// in parallel with results identical to the serial loop. Configurations
/// outside the feasible bounds (more locked FUs than allocated, more locked
/// inputs than candidates) return an empty record list.
///
/// # Errors
/// Propagates binding/search errors from `lockbind-core`.
pub fn run_error_cell(
    prepared: &PreparedKernel,
    ctx: &ClassContext,
    params: &ExperimentParams,
    locked_fus: usize,
    locked_inputs: usize,
) -> Result<Vec<ErrorRecord>, CoreError> {
    run_error_cell_cancellable(
        prepared,
        ctx,
        params,
        locked_fus,
        locked_inputs,
        &CancelToken::new(),
    )
}

/// [`run_error_cell`] with cooperative cancellation: the token is polled
/// once per combination assignment and per co-design search step, so a cell
/// whose deadline fires stops within one assignment's worth of work instead
/// of running to completion.
///
/// # Errors
/// Returns [`CoreError::Interrupted`] when `cancel` fires mid-cell, in
/// addition to the errors of [`run_error_cell`].
pub fn run_error_cell_cancellable(
    prepared: &PreparedKernel,
    ctx: &ClassContext,
    params: &ExperimentParams,
    locked_fus: usize,
    locked_inputs: usize,
    cancel: &CancelToken,
) -> Result<Vec<ErrorRecord>, CoreError> {
    let max_fus = params.max_locked_fus.min(prepared.alloc.count(ctx.class));
    let max_inputs = params.max_locked_inputs.min(ctx.candidates.len());
    if locked_fus == 0 || locked_fus > max_fus || locked_inputs == 0 || locked_inputs > max_inputs {
        return Ok(Vec::new());
    }
    let fus: Vec<FuId> = (0..locked_fus).map(|i| FuId::new(ctx.class, i)).collect();
    let mut records = obf_aware_cell(
        prepared,
        params,
        ctx.class,
        &fus,
        locked_inputs,
        &ctx.candidates,
        &ctx.area,
        &ctx.power,
        cancel,
    )?;
    records.extend(codesign_cell(
        prepared,
        params,
        ctx.class,
        &fus,
        locked_inputs,
        &ctx.candidates,
        &ctx.area,
        &ctx.power,
        cancel,
    )?);
    Ok(records)
}

/// Runs the full error-ratio experiment for one prepared kernel, producing
/// one [`ErrorRecord`] per (class, configuration, algorithm).
///
/// This is the serial reference loop; the engine-backed grid in
/// [`crate::grid`] produces the identical record sequence cell by cell.
///
/// # Errors
/// Propagates binding/search errors from `lockbind-core` (none are expected
/// for suite kernels).
pub fn run_error_experiment(
    prepared: &PreparedKernel,
    params: &ExperimentParams,
) -> Result<Vec<ErrorRecord>, CoreError> {
    let mut records = Vec::new();
    for class in prepared.classes() {
        let Some(ctx) = ClassContext::build(prepared, class, params.num_candidates)? else {
            continue;
        };
        for locked_fus in 1..=params.max_locked_fus {
            for locked_inputs in 1..=params.max_locked_inputs {
                records.extend(run_error_cell(
                    prepared,
                    &ctx,
                    params,
                    locked_fus,
                    locked_inputs,
                )?);
            }
        }
    }
    Ok(records)
}

/// Mixed-radix increment; returns false when the counter wraps around.
fn advance(counter: &mut [usize], radix: usize) -> bool {
    for digit in counter.iter_mut() {
        *digit += 1;
        if *digit < radix {
            return true;
        }
        *digit = 0;
    }
    false
}

/// The combination assignments evaluated for a configuration: exhaustive
/// when the cartesian product fits `max_assignments`, otherwise a seeded
/// subsample of that size.
fn enumerate_assignments(
    params: &ExperimentParams,
    num_fus: usize,
    num_combos: usize,
    locked_inputs: usize,
) -> Vec<Vec<usize>> {
    let total: u128 = (num_combos as u128)
        .checked_pow(num_fus as u32)
        .unwrap_or(u128::MAX);
    if total <= params.max_assignments as u128 {
        let mut all = Vec::with_capacity(total as usize);
        let mut counter = vec![0usize; num_fus];
        loop {
            all.push(counter.clone());
            if !advance(&mut counter, num_combos) {
                break;
            }
        }
        all
    } else {
        let mut state = params.seed ^ ((num_fus as u64) << 32) ^ locked_inputs as u64;
        (0..params.max_assignments)
            .map(|_| {
                (0..num_fus)
                    .map(|_| (splitmix64(&mut state) as usize) % num_combos)
                    .collect()
            })
            .collect()
    }
}

/// Per-(slot, combination) Eqn. 2 error contribution of a *fixed* baseline
/// binding: `table[k][ci]` is the errors that slot `k`'s FU contributes when
/// locked with combination `ci`, so the baseline errors of any assignment
/// are the sum of one table entry per slot. Exactly equal (u64 addition is
/// order-independent) to `expected_application_errors(binding, ..)` on the
/// assignment's spec, at one table lookup per slot instead of a full
/// binding walk per assignment.
fn baseline_tables(
    profile: &OccurrenceProfile,
    binding: &Binding,
    fus: &[FuId],
    combos: &[Vec<usize>],
    candidates: &[Minterm],
) -> Vec<Vec<u64>> {
    fus.iter()
        .map(|&fu| {
            let ops = binding.ops_on(fu);
            combos
                .iter()
                .map(|combo| {
                    let ms: Vec<Minterm> = combo.iter().map(|&i| candidates[i]).collect();
                    ops.iter().map(|&op| profile.count_sum(op, &ms)).sum()
                })
                .collect()
        })
        .collect()
}

/// Obfuscation-aware cell: enumerate (or sample) combination assignments,
/// score each with obf-aware binding, and compare against the baselines
/// locked with the *same* assignment.
///
/// Scoring goes through [`ErrorSweep`] — per assignment only the slots
/// whose combination differs from the previous assignment update their
/// warm-started matrix columns, and the per-cycle optima are the exact
/// errors a cold `bind_obfuscation_aware` + `expected_application_errors`
/// pair would produce (the `lockbind-check` mutation suite pins this).
/// Baseline errors come from [`baseline_tables`]. The f64 accumulation
/// order is unchanged, so every emitted record is byte-identical to the
/// legacy per-assignment binding loop.
#[allow(clippy::too_many_arguments)]
fn obf_aware_cell(
    prepared: &PreparedKernel,
    params: &ExperimentParams,
    class: FuClass,
    fus: &[FuId],
    locked_inputs: usize,
    candidates: &[Minterm],
    area: &Binding,
    power: &Binding,
    cancel: &CancelToken,
) -> Result<Vec<ErrorRecord>, CoreError> {
    let combos = combinations(candidates.len(), locked_inputs);
    let assignments = enumerate_assignments(params, fus.len(), combos.len(), locked_inputs);
    let _span = obs::span!("cell.obf_aware", assignments = assignments.len());

    let mut sweep = ErrorSweep::new(
        &prepared.dfg,
        &prepared.schedule,
        &prepared.alloc,
        &prepared.profile,
        fus,
        candidates,
        &combos,
    )?;
    let t_area = baseline_tables(&prepared.profile, area, fus, &combos, candidates);
    let t_power = baseline_tables(&prepared.profile, power, fus, &combos, candidates);

    let mut sum_area = 0.0;
    let mut sum_power = 0.0;
    let mut sum_err = 0.0;
    let n = assignments.len();
    for assign in &assignments {
        if cancel.is_cancelled() {
            return Err(CoreError::Interrupted {
                stage: "bench.obf_aware",
            });
        }
        for (k, &ci) in assign.iter().enumerate() {
            sweep.set_slot(k, ci);
        }
        let e_obf = sweep.solve_errors()?;
        let e_area: u64 = assign
            .iter()
            .enumerate()
            .map(|(k, &ci)| t_area[k][ci])
            .sum();
        let e_power: u64 = assign
            .iter()
            .enumerate()
            .map(|(k, &ci)| t_power[k][ci])
            .sum();
        sum_area += ratio(e_obf, e_area);
        sum_power += ratio(e_obf, e_power);
        sum_err += e_obf as f64;
    }

    Ok(vec![ErrorRecord {
        kernel: prepared.name.clone(),
        class,
        locked_fus: fus.len(),
        locked_inputs,
        algo: SecurityAlgo::ObfAware,
        vs_area: sum_area / n as f64,
        vs_power: sum_power / n as f64,
        mean_errors: sum_err / n as f64,
        samples: n,
    }])
}

/// Co-design cell: heuristic always; optimal when the search fits the
/// budget.
///
/// Ratio convention (matching the paper's Fig. 4 bottom, where co-design
/// ratios are far above the obf-aware ones): the co-design error count is
/// compared against the baseline bindings locked with *each enumerated
/// candidate combination* of the same configuration, and the ratios are
/// averaged — i.e. "how much better is letting the algorithm pick both the
/// binding and the inputs than locking a same-shaped configuration after
/// area/power-aware binding".
#[allow(clippy::too_many_arguments)]
fn codesign_cell(
    prepared: &PreparedKernel,
    params: &ExperimentParams,
    class: FuClass,
    fus: &[FuId],
    locked_inputs: usize,
    candidates: &[Minterm],
    area: &Binding,
    power: &Binding,
    cancel: &CancelToken,
) -> Result<Vec<ErrorRecord>, CoreError> {
    let combos = combinations(candidates.len(), locked_inputs);
    let assignments = enumerate_assignments(params, fus.len(), combos.len(), locked_inputs);
    let _span = obs::span!("cell.codesign", assignments = assignments.len());

    // Baseline error distribution over the enumerated combinations, read
    // off the per-slot tables (one lookup per slot per assignment).
    let t_area = baseline_tables(&prepared.profile, area, fus, &combos, candidates);
    let t_power = baseline_tables(&prepared.profile, power, fus, &combos, candidates);
    let mut base_area = Vec::with_capacity(assignments.len());
    let mut base_power = Vec::with_capacity(assignments.len());
    for assign in &assignments {
        if cancel.is_cancelled() {
            return Err(CoreError::Interrupted {
                stage: "bench.codesign",
            });
        }
        base_area.push(
            assign
                .iter()
                .enumerate()
                .map(|(k, &ci)| t_area[k][ci])
                .sum(),
        );
        base_power.push(
            assign
                .iter()
                .enumerate()
                .map(|(k, &ci)| t_power[k][ci])
                .sum(),
        );
    }
    let mean_ratio = |errors: u64, bases: &[u64]| -> f64 {
        bases.iter().map(|&b| ratio(errors, b)).sum::<f64>() / bases.len() as f64
    };

    let mut out = Vec::new();
    let heur = codesign_heuristic_cancellable(
        &prepared.dfg,
        &prepared.schedule,
        &prepared.alloc,
        &prepared.profile,
        fus,
        locked_inputs,
        candidates,
        cancel,
    )?;
    out.push(ErrorRecord {
        kernel: prepared.name.clone(),
        class,
        locked_fus: fus.len(),
        locked_inputs,
        algo: SecurityAlgo::CoDesignHeuristic,
        vs_area: mean_ratio(heur.errors, &base_area),
        vs_power: mean_ratio(heur.errors, &base_power),
        mean_errors: heur.errors as f64,
        samples: assignments.len(),
    });

    let evaluations = (combos.len() as u128)
        .checked_pow(fus.len() as u32)
        .unwrap_or(u128::MAX);
    if evaluations <= params.optimal_budget {
        let opt = codesign_optimal_cancellable(
            &prepared.dfg,
            &prepared.schedule,
            &prepared.alloc,
            &prepared.profile,
            fus,
            locked_inputs,
            candidates,
            cancel,
        )?;
        out.push(ErrorRecord {
            kernel: prepared.name.clone(),
            class,
            locked_fus: fus.len(),
            locked_inputs,
            algo: SecurityAlgo::CoDesignOptimal,
            vs_area: mean_ratio(opt.errors, &base_area),
            vs_power: mean_ratio(opt.errors, &base_power),
            mean_errors: opt.errors as f64,
            samples: assignments.len(),
        });
    }
    Ok(out)
}

/// Geometric mean helper used by the report binaries (log-scale bars in the
/// paper's figures suggest multiplicative aggregation; the arithmetic mean
/// is also reported).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(f64::MIN_POSITIVE).ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_mediabench::Kernel;

    fn small_params() -> ExperimentParams {
        ExperimentParams {
            num_candidates: 4,
            max_locked_fus: 2,
            max_locked_inputs: 2,
            max_assignments: 60,
            optimal_budget: 200,
            seed: 7,
        }
    }

    #[test]
    fn experiment_produces_records_for_both_classes() {
        let p = PreparedKernel::new(Kernel::Fir, 80, 5);
        let records = run_error_experiment(&p, &small_params()).expect("runs");
        assert!(records.iter().any(|r| r.class == FuClass::Adder));
        assert!(records.iter().any(|r| r.class == FuClass::Multiplier));
        // 2 classes x 2 fu-counts x 2 input-counts x (obf + heur [+ opt]).
        assert!(records.len() >= 16, "records: {}", records.len());
    }

    #[test]
    fn security_algorithms_dominate_baselines_on_average() {
        let p = PreparedKernel::new(Kernel::Motion2, 120, 5);
        let records = run_error_experiment(&p, &small_params()).expect("runs");
        for r in &records {
            assert!(
                r.vs_area >= 0.99,
                "{:?} vs_area {} < 1: security-aware binding should never lose",
                r.algo,
                r.vs_area
            );
            assert!(r.vs_power >= 0.99, "{:?} vs_power {}", r.algo, r.vs_power);
        }
    }

    #[test]
    fn optimal_dominates_heuristic_where_run() {
        let p = PreparedKernel::new(Kernel::Jdmerge1, 80, 9);
        let records = run_error_experiment(&p, &small_params()).expect("runs");
        for r in &records {
            if r.algo != SecurityAlgo::CoDesignOptimal {
                continue;
            }
            let heur = records
                .iter()
                .find(|h| {
                    h.algo == SecurityAlgo::CoDesignHeuristic
                        && h.class == r.class
                        && h.locked_fus == r.locked_fus
                        && h.locked_inputs == r.locked_inputs
                })
                .expect("heuristic record exists");
            assert!(
                r.mean_errors >= heur.mean_errors,
                "optimal {} < heuristic {}",
                r.mean_errors,
                heur.mean_errors
            );
        }
    }

    /// The legacy obf-aware cell, reimplemented verbatim: one cold binding
    /// solve and three full Eqn. 2 walks per assignment. The sweep-backed
    /// cell must reproduce its record *bitwise* (same f64 accumulation).
    fn legacy_obf_aware_record(
        p: &PreparedKernel,
        params: &ExperimentParams,
        ctx: &ClassContext,
        locked_fus: usize,
        locked_inputs: usize,
    ) -> ErrorRecord {
        use lockbind_core::{bind_obfuscation_aware, expected_application_errors, LockingSpec};
        let fus: Vec<FuId> = (0..locked_fus).map(|i| FuId::new(ctx.class, i)).collect();
        let combos = combinations(ctx.candidates.len(), locked_inputs);
        let assignments = enumerate_assignments(params, fus.len(), combos.len(), locked_inputs);
        let (mut sum_area, mut sum_power, mut sum_err) = (0.0, 0.0, 0.0);
        for assign in &assignments {
            let entries: Vec<(FuId, Vec<Minterm>)> = fus
                .iter()
                .zip(assign)
                .map(|(&fu, &ci)| (fu, combos[ci].iter().map(|&i| ctx.candidates[i]).collect()))
                .collect();
            let spec = LockingSpec::new(&p.alloc, entries).expect("valid");
            let obf = bind_obfuscation_aware(&p.dfg, &p.schedule, &p.alloc, &p.profile, &spec)
                .expect("feasible");
            let e_obf = expected_application_errors(&obf, &p.profile, &spec);
            let e_area = expected_application_errors(&ctx.area, &p.profile, &spec);
            let e_power = expected_application_errors(&ctx.power, &p.profile, &spec);
            sum_area += ratio(e_obf, e_area);
            sum_power += ratio(e_obf, e_power);
            sum_err += e_obf as f64;
        }
        let n = assignments.len();
        ErrorRecord {
            kernel: p.name.clone(),
            class: ctx.class,
            locked_fus,
            locked_inputs,
            algo: SecurityAlgo::ObfAware,
            vs_area: sum_area / n as f64,
            vs_power: sum_power / n as f64,
            mean_errors: sum_err / n as f64,
            samples: n,
        }
    }

    #[test]
    fn sweep_cell_is_bitwise_identical_to_legacy_cell() {
        for kernel in [Kernel::Fir, Kernel::Motion2] {
            let p = PreparedKernel::new(kernel, 80, 5);
            let params = small_params();
            for class in [FuClass::Adder, FuClass::Multiplier] {
                let Some(ctx) =
                    ClassContext::build(&p, class, params.num_candidates).expect("builds")
                else {
                    continue;
                };
                for locked_fus in 1..=2 {
                    for locked_inputs in 1..=2 {
                        let fast = run_error_cell(&p, &ctx, &params, locked_fus, locked_inputs)
                            .expect("runs");
                        let Some(fast) = fast.iter().find(|r| r.algo == SecurityAlgo::ObfAware)
                        else {
                            continue; // infeasible configuration for this class
                        };
                        let slow =
                            legacy_obf_aware_record(&p, &params, &ctx, locked_fus, locked_inputs);
                        // Bitwise, not approximate: headline artifacts must
                        // stay byte-identical across the fast path.
                        assert_eq!(fast.vs_area.to_bits(), slow.vs_area.to_bits());
                        assert_eq!(fast.vs_power.to_bits(), slow.vs_power.to_bits());
                        assert_eq!(fast.mean_errors.to_bits(), slow.mean_errors.to_bits());
                        assert_eq!(fast.samples, slow.samples);
                    }
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_token_interrupts_a_cell() {
        let p = PreparedKernel::new(Kernel::Fir, 80, 5);
        let ctx = ClassContext::build(&p, FuClass::Adder, 4)
            .expect("builds")
            .expect("fir has adders");
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = run_error_cell_cancellable(&p, &ctx, &small_params(), 1, 1, &cancel).unwrap_err();
        assert!(
            matches!(err, CoreError::Interrupted { .. }),
            "expected Interrupted, got {err:?}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 16.0]) - 8.0).abs() < 1e-9);
        assert!(geomean(std::iter::empty()).is_nan());
    }
}
