//! The Fig. 6 overhead experiment: register count and switching rate of
//! security-aware binding vs the area-/power-aware baselines.

use lockbind_core::{
    bind_area_aware, bind_obfuscation_aware, bind_power_aware, codesign_heuristic, CoreError,
    LockingSpec,
};
use lockbind_hls::metrics::{register_count, switching};
use lockbind_hls::{FuId, Minterm};

use crate::{ErrorRecord, PreparedKernel, SecurityAlgo};

/// Overhead of one security-aware algorithm on one kernel, relative to the
/// baselines (paper Fig. 6: averages +4.7 registers, +0.03 switching rate).
#[derive(Debug, Clone)]
pub struct OverheadRecord {
    /// Kernel name.
    pub kernel: String,
    /// The security-aware algorithm measured.
    pub algo: SecurityAlgo,
    /// Mean register-count increase over area-aware binding.
    pub register_increase: f64,
    /// Mean switching-rate increase over power-aware binding.
    pub switching_increase: f64,
    /// Register count of the area-aware baseline.
    pub area_registers: usize,
    /// Switching rate of the power-aware baseline.
    pub power_switching: f64,
}

/// Measures Fig.-6 overheads for a kernel: for each locking configuration
/// (same sweep as Fig. 4), bind with obfuscation-aware binding (using the
/// heuristic co-design's chosen inputs as the representative fixed spec)
/// and with co-design, then average the register/switching deltas against
/// the baselines.
///
/// # Errors
/// Propagates binding failures (unexpected on suite kernels).
pub fn measure_overhead(
    prepared: &PreparedKernel,
    num_candidates: usize,
) -> Result<Vec<OverheadRecord>, CoreError> {
    let area = bind_area_aware(&prepared.dfg, &prepared.schedule, &prepared.alloc)?;
    let power = bind_power_aware(
        &prepared.dfg,
        &prepared.schedule,
        &prepared.alloc,
        &prepared.switching,
    )?;
    let base_regs = register_count(&prepared.dfg, &prepared.schedule, &area, &prepared.alloc);
    let base_sw = switching(
        &prepared.schedule,
        &power,
        &prepared.alloc,
        &prepared.switching,
    )
    .rate;

    let mut acc: Vec<(SecurityAlgo, f64, f64, usize)> = vec![
        (SecurityAlgo::ObfAware, 0.0, 0.0, 0),
        (SecurityAlgo::CoDesignHeuristic, 0.0, 0.0, 0),
    ];

    for class in prepared.classes() {
        let candidates = prepared.candidates(class, num_candidates);
        if candidates.is_empty() {
            continue;
        }
        for locked_fus in 1..=3usize.min(prepared.alloc.count(class)) {
            let fus: Vec<FuId> = (0..locked_fus).map(|i| FuId::new(class, i)).collect();
            for locked_inputs in 1..=3usize.min(candidates.len()) {
                let heur = codesign_heuristic(
                    &prepared.dfg,
                    &prepared.schedule,
                    &prepared.alloc,
                    &prepared.profile,
                    &fus,
                    locked_inputs,
                    &candidates,
                )?;

                // Representative fixed spec for obf-aware: the first
                // candidate minterms per FU (a designer-specified set).
                let entries: Vec<(FuId, Vec<Minterm>)> = fus
                    .iter()
                    .enumerate()
                    .map(|(i, &fu)| {
                        let ms: Vec<Minterm> = candidates
                            .iter()
                            .cycle()
                            .skip(i)
                            .take(locked_inputs)
                            .copied()
                            .collect();
                        (fu, ms)
                    })
                    .collect();
                let fixed_spec = LockingSpec::new(&prepared.alloc, entries)?;
                let obf = bind_obfuscation_aware(
                    &prepared.dfg,
                    &prepared.schedule,
                    &prepared.alloc,
                    &prepared.profile,
                    &fixed_spec,
                )?;

                for (algo, binding) in [
                    (SecurityAlgo::ObfAware, &obf),
                    (SecurityAlgo::CoDesignHeuristic, &heur.binding),
                ] {
                    let regs =
                        register_count(&prepared.dfg, &prepared.schedule, binding, &prepared.alloc);
                    let sw = switching(
                        &prepared.schedule,
                        binding,
                        &prepared.alloc,
                        &prepared.switching,
                    )
                    .rate;
                    let slot = acc
                        .iter_mut()
                        .find(|(a, ..)| *a == algo)
                        .expect("slot exists");
                    slot.1 += regs as f64 - base_regs as f64;
                    slot.2 += sw - base_sw;
                    slot.3 += 1;
                }
            }
        }
    }

    Ok(acc
        .into_iter()
        .filter(|(_, _, _, n)| *n > 0)
        .map(|(algo, dr, ds, n)| OverheadRecord {
            kernel: prepared.name.clone(),
            algo,
            register_increase: dr / n as f64,
            switching_increase: ds / n as f64,
            area_registers: base_regs,
            power_switching: base_sw,
        })
        .collect())
}

/// Convenience used by the `fig5`/`headline` binaries: slice records by a
/// key function and average a metric within each slice.
pub fn average_by<K: Ord + Clone, F: Fn(&ErrorRecord) -> K, G: Fn(&ErrorRecord) -> f64>(
    records: &[ErrorRecord],
    key: F,
    metric: G,
) -> Vec<(K, f64, usize)> {
    let mut groups: std::collections::BTreeMap<K, (f64, usize)> = std::collections::BTreeMap::new();
    for r in records {
        let e = groups.entry(key(r)).or_insert((0.0, 0));
        e.0 += metric(r);
        e.1 += 1;
    }
    groups
        .into_iter()
        .map(|(k, (sum, n))| (k, sum / n as f64, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_mediabench::Kernel;

    #[test]
    fn overhead_is_finite_and_bounded() {
        let p = PreparedKernel::new(Kernel::Fir, 60, 3);
        let records = measure_overhead(&p, 4).expect("runs");
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.register_increase.is_finite());
            assert!(r.switching_increase.is_finite());
            // The baselines are greedy (not provably optimal), so security
            // binding may occasionally edge them out — but never by a lot.
            assert!(
                r.register_increase >= -3.0,
                "security binding beat the register minimizer too hard: {}",
                r.register_increase
            );
            assert!(r.switching_increase >= -0.1);
        }
    }

    #[test]
    fn average_by_groups_correctly() {
        let p = PreparedKernel::new(Kernel::Jctrans2, 40, 3);
        let records = crate::run_error_experiment(
            &p,
            &crate::ExperimentParams {
                num_candidates: 3,
                max_locked_fus: 2,
                max_locked_inputs: 1,
                max_assignments: 20,
                optimal_budget: 10,
                seed: 1,
            },
        )
        .expect("runs");
        let by_fus = average_by(&records, |r| r.locked_fus, |r| r.vs_area);
        assert!(!by_fus.is_empty());
        for (_, avg, n) in by_fus {
            assert!(avg >= 1.0 - 1e-9);
            assert!(n > 0);
        }
    }
}
