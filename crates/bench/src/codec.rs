//! Checkpoint codecs for the grid cell outputs.
//!
//! The engine's sweep checkpoint ([`lockbind_engine::checkpoint`]) stores
//! each completed cell as one opaque payload string; these helpers give the
//! bench cell types a lossless text encoding. Records are separated by the
//! ASCII record separator (`\x1e`), fields by the unit separator (`\x1f`) —
//! neither appears in kernel names or algorithm labels. Floats round-trip
//! through Rust's shortest-repr `{:?}` formatting, so a decoded record is
//! bit-identical to the encoded one and a resumed sweep reproduces the
//! uninterrupted run byte for byte.

use lockbind_hls::FuClass;
use lockbind_obs::json::Json;

use crate::headline_cells::{HeadlineOutput, ImpactRecord, SatRecord, SatScheme};
use crate::{ErrorRecord, OverheadRecord, SecurityAlgo};

const RECORD_SEP: char = '\x1e';
const FIELD_SEP: char = '\x1f';

fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn parse_f64(text: &str) -> Option<f64> {
    text.parse().ok()
}

fn fmt_class(class: FuClass) -> String {
    format!("{class:?}")
}

fn parse_class(text: &str) -> Option<FuClass> {
    match text {
        "Adder" => Some(FuClass::Adder),
        "Multiplier" => Some(FuClass::Multiplier),
        _ => None,
    }
}

fn parse_algo(text: &str) -> Option<SecurityAlgo> {
    [
        SecurityAlgo::ObfAware,
        SecurityAlgo::CoDesignHeuristic,
        SecurityAlgo::CoDesignOptimal,
    ]
    .into_iter()
    .find(|algo| algo.label() == text)
}

fn parse_scheme_label(text: &str) -> Option<&'static str> {
    SatScheme::ALL
        .into_iter()
        .map(SatScheme::label)
        .find(|label| *label == text)
}

fn join_records<T>(records: &[T], encode: impl Fn(&T) -> String) -> String {
    records
        .iter()
        .map(encode)
        .collect::<Vec<_>>()
        .join(&RECORD_SEP.to_string())
}

fn split_records(payload: &str) -> Vec<&str> {
    if payload.is_empty() {
        Vec::new()
    } else {
        payload.split(RECORD_SEP).collect()
    }
}

/// Encodes error-ratio records for the checkpoint.
pub fn encode_error_records(records: &[ErrorRecord]) -> String {
    join_records(records, |r| {
        [
            r.kernel.clone(),
            fmt_class(r.class),
            r.locked_fus.to_string(),
            r.locked_inputs.to_string(),
            r.algo.label().to_string(),
            fmt_f64(r.vs_area),
            fmt_f64(r.vs_power),
            fmt_f64(r.mean_errors),
            r.samples.to_string(),
        ]
        .join(&FIELD_SEP.to_string())
    })
}

/// Decodes [`encode_error_records`] output; `None` on any malformed field.
pub fn decode_error_records(payload: &str) -> Option<Vec<ErrorRecord>> {
    split_records(payload)
        .into_iter()
        .map(|record| {
            let fields: Vec<&str> = record.split(FIELD_SEP).collect();
            let [kernel, class, locked_fus, locked_inputs, algo, vs_area, vs_power, mean_errors, samples] =
                fields[..]
            else {
                return None;
            };
            Some(ErrorRecord {
                kernel: kernel.to_string(),
                class: parse_class(class)?,
                locked_fus: locked_fus.parse().ok()?,
                locked_inputs: locked_inputs.parse().ok()?,
                algo: parse_algo(algo)?,
                vs_area: parse_f64(vs_area)?,
                vs_power: parse_f64(vs_power)?,
                mean_errors: parse_f64(mean_errors)?,
                samples: samples.parse().ok()?,
            })
        })
        .collect()
}

/// Encodes overhead records for the checkpoint.
pub fn encode_overhead_records(records: &[OverheadRecord]) -> String {
    join_records(records, |r| {
        [
            r.kernel.clone(),
            r.algo.label().to_string(),
            fmt_f64(r.register_increase),
            fmt_f64(r.switching_increase),
            r.area_registers.to_string(),
            fmt_f64(r.power_switching),
        ]
        .join(&FIELD_SEP.to_string())
    })
}

/// Decodes [`encode_overhead_records`] output.
pub fn decode_overhead_records(payload: &str) -> Option<Vec<OverheadRecord>> {
    split_records(payload)
        .into_iter()
        .map(|record| {
            let fields: Vec<&str> = record.split(FIELD_SEP).collect();
            let [kernel, algo, register_increase, switching_increase, area_registers, power_switching] =
                fields[..]
            else {
                return None;
            };
            Some(OverheadRecord {
                kernel: kernel.to_string(),
                algo: parse_algo(algo)?,
                register_increase: parse_f64(register_increase)?,
                switching_increase: parse_f64(switching_increase)?,
                area_registers: area_registers.parse().ok()?,
                power_switching: parse_f64(power_switching)?,
            })
        })
        .collect()
}

fn encode_impact(r: &ImpactRecord) -> String {
    [
        r.kernel.clone(),
        fmt_f64(r.frame_rate),
        r.frames_corrupted.to_string(),
        r.frames_total.to_string(),
    ]
    .join(&FIELD_SEP.to_string())
}

fn decode_impact(payload: &str) -> Option<ImpactRecord> {
    let fields: Vec<&str> = payload.split(FIELD_SEP).collect();
    let [kernel, frame_rate, frames_corrupted, frames_total] = fields[..] else {
        return None;
    };
    Some(ImpactRecord {
        kernel: kernel.to_string(),
        frame_rate: parse_f64(frame_rate)?,
        frames_corrupted: frames_corrupted.parse().ok()?,
        frames_total: frames_total.parse().ok()?,
    })
}

fn encode_sat(r: &SatRecord) -> String {
    [
        r.scheme.to_string(),
        r.key_bits.to_string(),
        r.iterations.to_string(),
        r.success.to_string(),
        r.conflicts.to_string(),
        r.propagations.to_string(),
        r.gc_runs.to_string(),
    ]
    .join(&FIELD_SEP.to_string())
}

fn decode_sat(payload: &str) -> Option<SatRecord> {
    let fields: Vec<&str> = payload.split(FIELD_SEP).collect();
    let [scheme, key_bits, iterations, success, conflicts, propagations, gc_runs] = fields[..]
    else {
        return None;
    };
    Some(SatRecord {
        scheme: parse_scheme_label(scheme)?,
        key_bits: key_bits.parse().ok()?,
        iterations: iterations.parse().ok()?,
        success: success.parse().ok()?,
        conflicts: conflicts.parse().ok()?,
        propagations: propagations.parse().ok()?,
        gc_runs: gc_runs.parse().ok()?,
    })
}

/// Renders an [`ErrorRecord`] as a JSON object — the response body shape
/// the serve daemon puts on the wire. Field order is fixed and the labels
/// match the checkpoint codec (`class` via `FuClass`'s debug name, `algo`
/// via [`SecurityAlgo::label`]), so wire responses, checkpoints, and
/// figure tables all agree on vocabulary.
pub fn error_record_json(r: &ErrorRecord) -> Json {
    Json::obj([
        ("kernel", Json::from(r.kernel.as_str())),
        ("class", Json::from(fmt_class(r.class))),
        ("locked_fus", Json::from(r.locked_fus)),
        ("locked_inputs", Json::from(r.locked_inputs)),
        ("algo", Json::from(r.algo.label())),
        ("vs_area", Json::from(r.vs_area)),
        ("vs_power", Json::from(r.vs_power)),
        ("mean_errors", Json::from(r.mean_errors)),
        ("samples", Json::from(r.samples)),
    ])
}

/// Renders an [`ImpactRecord`] (locked-sim output) as a JSON object.
pub fn impact_record_json(r: &ImpactRecord) -> Json {
    Json::obj([
        ("kernel", Json::from(r.kernel.as_str())),
        ("frame_rate", Json::from(r.frame_rate)),
        ("frames_corrupted", Json::from(r.frames_corrupted)),
        ("frames_total", Json::from(r.frames_total)),
    ])
}

/// Renders a [`SatRecord`] (SAT-attack output) as a JSON object.
pub fn sat_record_json(r: &SatRecord) -> Json {
    Json::obj([
        ("scheme", Json::from(r.scheme)),
        ("key_bits", Json::from(r.key_bits)),
        ("iterations", Json::from(r.iterations)),
        ("success", Json::from(r.success)),
        ("conflicts", Json::from(r.conflicts)),
        ("propagations", Json::from(r.propagations)),
        ("gc_runs", Json::from(r.gc_runs)),
    ])
}

/// Encodes a combined-grid output, tagged with its variant.
pub fn encode_headline_output(output: &HeadlineOutput) -> String {
    match output {
        HeadlineOutput::Error(records) => {
            format!("error{RECORD_SEP}{}", encode_error_records(records))
        }
        HeadlineOutput::Impact(record) => format!("impact{RECORD_SEP}{}", encode_impact(record)),
        HeadlineOutput::Sat(record) => format!("sat{RECORD_SEP}{}", encode_sat(record)),
    }
}

/// Decodes [`encode_headline_output`] output.
pub fn decode_headline_output(payload: &str) -> Option<HeadlineOutput> {
    let (tag, rest) = match payload.split_once(RECORD_SEP) {
        Some((tag, rest)) => (tag, rest),
        None => (payload, ""),
    };
    match tag {
        "error" => Some(HeadlineOutput::Error(decode_error_records(rest)?)),
        "impact" => Some(HeadlineOutput::Impact(decode_impact(rest)?)),
        "sat" => Some(HeadlineOutput::Sat(decode_sat(rest)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_error_records() -> Vec<ErrorRecord> {
        vec![
            ErrorRecord {
                kernel: "fir".to_string(),
                class: FuClass::Adder,
                locked_fus: 2,
                locked_inputs: 3,
                algo: SecurityAlgo::ObfAware,
                vs_area: 1.5000000000000002,
                vs_power: 2.25,
                mean_errors: 0.1,
                samples: 40,
            },
            ErrorRecord {
                kernel: "jdmerge1".to_string(),
                class: FuClass::Multiplier,
                locked_fus: 1,
                locked_inputs: 1,
                algo: SecurityAlgo::CoDesignOptimal,
                vs_area: f64::MAX,
                vs_power: 1e-308,
                mean_errors: 3.0,
                samples: 1,
            },
        ]
    }

    #[test]
    fn error_records_round_trip_bit_exactly() {
        let records = sample_error_records();
        let decoded = decode_error_records(&encode_error_records(&records)).expect("decodes");
        assert_eq!(decoded.len(), records.len());
        for (d, r) in decoded.iter().zip(&records) {
            assert_eq!(format!("{d:?}"), format!("{r:?}"));
            assert_eq!(d.vs_area.to_bits(), r.vs_area.to_bits());
            assert_eq!(d.vs_power.to_bits(), r.vs_power.to_bits());
        }
    }

    #[test]
    fn empty_record_lists_round_trip() {
        assert!(decode_error_records(&encode_error_records(&[]))
            .expect("empty list")
            .is_empty());
        assert!(decode_overhead_records(&encode_overhead_records(&[]))
            .expect("empty list")
            .is_empty());
    }

    #[test]
    fn overhead_records_round_trip() {
        let records = vec![OverheadRecord {
            kernel: "motion2".to_string(),
            algo: SecurityAlgo::CoDesignHeuristic,
            register_increase: 0.07142857142857142,
            switching_increase: -0.003,
            area_registers: 14,
            power_switching: 2.75,
        }];
        let decoded = decode_overhead_records(&encode_overhead_records(&records)).expect("decodes");
        assert_eq!(format!("{decoded:?}"), format!("{records:?}"));
    }

    #[test]
    fn headline_outputs_round_trip_all_variants() {
        let outputs = [
            HeadlineOutput::Error(sample_error_records()),
            HeadlineOutput::Error(Vec::new()),
            HeadlineOutput::Impact(ImpactRecord {
                kernel: "fir".to_string(),
                frame_rate: 0.125,
                frames_corrupted: 5,
                frames_total: 40,
            }),
            HeadlineOutput::Sat(SatRecord {
                scheme: SatScheme::AntiSat.label(),
                key_bits: 6,
                iterations: 9,
                success: true,
                conflicts: 120,
                propagations: 4_903_114,
                gc_runs: 2,
            }),
        ];
        for output in &outputs {
            let decoded = decode_headline_output(&encode_headline_output(output)).expect("decodes");
            assert_eq!(format!("{decoded:?}"), format!("{output:?}"));
        }
    }

    #[test]
    fn record_json_renderers_fix_field_order_and_labels() {
        let error = &sample_error_records()[0];
        assert_eq!(
            error_record_json(error).render(),
            "{\"kernel\":\"fir\",\"class\":\"Adder\",\"locked_fus\":2,\
             \"locked_inputs\":3,\"algo\":\"obf-aware\",\
             \"vs_area\":1.5000000000000002,\"vs_power\":2.25,\
             \"mean_errors\":0.1,\"samples\":40}"
        );
        let impact = ImpactRecord {
            kernel: "fir".to_string(),
            frame_rate: 0.125,
            frames_corrupted: 5,
            frames_total: 40,
        };
        assert_eq!(
            impact_record_json(&impact).render(),
            "{\"kernel\":\"fir\",\"frame_rate\":0.125,\
             \"frames_corrupted\":5,\"frames_total\":40}"
        );
        let sat = SatRecord {
            scheme: SatScheme::AntiSat.label(),
            key_bits: 6,
            iterations: 9,
            success: true,
            conflicts: 120,
            propagations: 4_903_114,
            gc_runs: 2,
        };
        assert_eq!(
            sat_record_json(&sat).render(),
            "{\"scheme\":\"anti-sat\",\"key_bits\":6,\"iterations\":9,\
             \"success\":true,\"conflicts\":120,\"propagations\":4903114,\
             \"gc_runs\":2}"
        );
    }

    #[test]
    fn garbage_is_rejected_not_mangled() {
        assert!(decode_error_records("not a record").is_none());
        assert!(decode_headline_output("mystery\x1epayload").is_none());
        assert!(decode_sat("rll\x1fnot-a-number\x1f3\x1ftrue").is_none());
    }
}
