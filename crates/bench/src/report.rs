//! Plain-text table rendering for the experiment binaries.

/// Renders a table with a header row and aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a ratio like the paper's log-scale bar labels.
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else if r >= 10.0 {
        format!("{r:.1}x")
    } else {
        format!("{r:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with(" a"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(123.4), "123x");
        assert_eq!(fmt_ratio(12.34), "12.3x");
        assert_eq!(fmt_ratio(1.234), "1.23x");
    }
}
