//! Check-aware cell support: lint final artifacts with the
//! `lockbind-check` pass suite.
//!
//! Cells cannot afford to lint every candidate assignment inside their hot
//! loops (a sweep evaluates hundreds of thousands of bindings), so when the
//! engine's `--check` mode is on each cell lints one *final* artifact: the
//! representative locked binding of an error cell, the co-designed lock of
//! an impact cell, or the locked netlist of a SAT cell. Failures surface as
//! cell errors carrying [`lockbind_check::CHECK_FAILURE_PREFIX`], which the
//! engine classifies into `cells_check_failed` and per-`LBxxxx`-code counts
//! in the run metrics.
//!
//! The engine's `--audit` mode works the same way but runs the LB07xx
//! structural-security audit ([`lockbind_check::audit_netlist`]) over the
//! same final locked netlists. Audit *warnings* are a leakage scorecard,
//! not a defect — they feed the `audit.*` obs counters (and the `audit`
//! object of the run-metrics JSON) without touching the cell result, so
//! enabling the audit leaves every grid byte-identical. Only error-severity
//! findings (`LB0701`, an unobservable key bit) fail the cell.

use lockbind_check::{audit_passed, check_artifact, Artifact, Report};
use lockbind_core::{bind_obfuscation_aware_certified, LockingSpec};
use lockbind_hls::{Binding, Minterm};
use lockbind_netlist::Netlist;

use crate::PreparedKernel;

/// Lints a locked binding end to end: re-derives the certified
/// obfuscation-aware binding for `spec` (exporting fresh dual potentials),
/// then runs the full pass suite over the artifact — DFG, schedule,
/// allocation, binding, occurrence profile, locking spec, candidate list,
/// and the certificate.
///
/// When `binding` is `Some`, the *cell's* binding is linted against the
/// re-derived certificate: the certificate-assignment pass (`LB0406`) then
/// proves the cell's binding *is* the certified Eqn. 3 optimum, not merely
/// that some optimum exists. With `None`, the re-derived binding itself is
/// linted (used where the cell never materializes a single binding, e.g.
/// error cells that sweep many assignments).
///
/// # Errors
/// Returns the check failure message (prefixed with
/// [`lockbind_check::CHECK_FAILURE_PREFIX`]) when any error-severity
/// diagnostic fires, or a rebind error message if the certified solve
/// itself fails.
pub fn lint_locked_binding(
    prepared: &PreparedKernel,
    binding: Option<&Binding>,
    spec: &LockingSpec,
    candidates: &[Minterm],
) -> Result<(), String> {
    let (rebound, certificate) = bind_obfuscation_aware_certified(
        &prepared.dfg,
        &prepared.schedule,
        &prepared.alloc,
        &prepared.profile,
        spec,
    )
    .map_err(|e| format!("check rebind: {e}"))?;
    let binding = binding.unwrap_or(&rebound);
    let artifact = Artifact::new()
        .with_dfg(&prepared.dfg)
        .with_schedule(&prepared.schedule)
        .with_alloc(&prepared.alloc)
        .with_binding(binding)
        .with_profile(&prepared.profile)
        .with_spec(spec)
        .with_candidates(candidates)
        .with_certificate(&certificate);
    finish(check_artifact(&artifact))
}

/// Lints a locked netlist with the netlist-sanity pass (`LB06xx`):
/// acyclicity, output validity, no dead key inputs.
///
/// # Errors
/// Returns the prefixed check failure message when the netlist is rejected.
pub fn lint_netlist(netlist: &Netlist) -> Result<(), String> {
    finish(check_artifact(&Artifact::new().with_netlist(netlist)))
}

/// Runs the LB07xx structural-security audit over a locked netlist.
///
/// Findings are exported as `audit.*` obs counters as a side effect of
/// [`lockbind_check::audit_netlist`]; warning-severity findings are
/// *accepted* (they describe leakage, not brokenness).
///
/// # Errors
/// Returns the prefixed failure message only when an error-severity
/// finding fires (a structurally broken lock, e.g. an unobservable key).
pub fn audit_locked_netlist(netlist: &Netlist) -> Result<(), String> {
    let report = lockbind_check::audit_netlist(netlist);
    if audit_passed(&report) {
        Ok(())
    } else {
        finish(report)
    }
}

fn finish(report: Report) -> Result<(), String> {
    match report.failure_message() {
        Some(message) => Err(message),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockbind_hls::{FuClass, FuId};
    use lockbind_mediabench::Kernel;
    use lockbind_netlist::builders::adder_fu;

    #[test]
    fn certified_binding_lints_clean() {
        let p = PreparedKernel::new(Kernel::Fir, 40, 5);
        let candidates = p.candidates(FuClass::Adder, 4);
        let spec = LockingSpec::new(
            &p.alloc,
            vec![(FuId::new(FuClass::Adder, 0), candidates[..2].to_vec())],
        )
        .expect("valid spec");
        lint_locked_binding(&p, None, &spec, &candidates).expect("clean");
    }

    #[test]
    fn foreign_binding_is_rejected_with_lb0406() {
        let p = PreparedKernel::new(Kernel::Fir, 40, 5);
        let candidates = p.candidates(FuClass::Adder, 4);
        let spec = LockingSpec::new(
            &p.alloc,
            vec![(FuId::new(FuClass::Adder, 0), candidates[..2].to_vec())],
        )
        .expect("valid spec");
        // Swap two same-cycle, same-class ops of the certified optimum:
        // the result is still a legal binding, but its assignment no longer
        // matches the certificate's matching, so LB0406 must fire.
        let (obf, _) =
            bind_obfuscation_aware_certified(&p.dfg, &p.schedule, &p.alloc, &p.profile, &spec)
                .expect("binds");
        let mut fu_of = obf.as_slice().to_vec();
        let (a, b) = p
            .dfg
            .op_ids()
            .flat_map(|a| p.dfg.op_ids().map(move |b| (a, b)))
            .find(|&(a, b)| {
                a != b
                    && p.schedule.cycle(a) == p.schedule.cycle(b)
                    && fu_of[a.index()].class == fu_of[b.index()].class
                    && fu_of[a.index()] != fu_of[b.index()]
            })
            .expect("fir has two concurrent same-class ops on distinct FUs");
        fu_of.swap(a.index(), b.index());
        let swapped = lockbind_hls::Binding::from_assignment(&p.dfg, &p.schedule, &p.alloc, fu_of)
            .expect("swap preserves legality");
        let err = lint_locked_binding(&p, Some(&swapped), &spec, &candidates)
            .expect_err("swapped binding is not the certified optimum");
        assert!(
            err.starts_with(lockbind_check::CHECK_FAILURE_PREFIX),
            "{err}"
        );
        assert!(err.contains("LB0406"), "{err}");
    }

    #[test]
    fn locked_adder_netlist_lints_clean() {
        lint_netlist(&adder_fu(4)).expect("plain adder FU is sane");
    }

    #[test]
    fn audit_accepts_warning_heavy_schemes_and_rejects_orphaned_keys() {
        // Every real scheme carries audit warnings (that is the scorecard);
        // none of them should fail a cell.
        let base = adder_fu(4);
        let locked = lockbind_locking::lock_critical_minterms(&base, &[5, 11]).expect("locks");
        audit_locked_netlist(locked.netlist()).expect("warnings never fail cells");

        // An orphaned key input is a genuine structural defect (LB0701).
        let mut broken = base.clone();
        broken.add_key();
        let err = audit_locked_netlist(&broken).expect_err("orphaned key is an error");
        assert!(
            err.starts_with(lockbind_check::CHECK_FAILURE_PREFIX),
            "{err}"
        );
        assert!(err.contains("LB0701"), "{err}");
    }
}
