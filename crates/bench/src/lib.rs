//! Experiment harness regenerating the paper's evaluation (Sec. VI).
//!
//! The binaries in `src/bin/` print the same rows/series the paper reports:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig4` | Fig. 4 — per-benchmark error increase of obfuscation-aware binding and co-design over area/power-aware binding |
//! | `fig5` | Fig. 5 — error increase vs locking configuration |
//! | `fig6` | Fig. 6 — register-count / switching-rate overhead |
//! | `headline` | the abstract's 26x / 99x scalars + heuristic-vs-optimal gap |
//! | `sat_resilience` | Eqn.-1 validation with real SAT attacks (Sec. II-A) |
//! | `methodology` | the Sec. V-C design methodology walk-through |
//!
//! This library holds the shared machinery: kernel preparation, the
//! ratio-of-errors experiment, and overhead measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod codec;
pub mod errors_experiment;
pub mod grid;
pub mod headline_cells;
pub mod overhead;
pub mod prepared;
pub mod report;

pub use check::{audit_locked_netlist, lint_locked_binding, lint_netlist};
pub use errors_experiment::{
    run_error_cell, run_error_cell_cancellable, run_error_experiment, ClassContext, ErrorRecord,
    ExperimentParams, SecurityAlgo,
};
pub use grid::{collect_error_records, error_grid, ErrorCell, OverheadCell};
pub use headline_cells::{
    collect_headline_records, headline_grid, HeadlineCell, HeadlineOutput, ImpactCell,
    ImpactRecord, SatCell, SatRecord, SatScheme,
};
pub use overhead::{measure_overhead, OverheadRecord};
pub use prepared::PreparedKernel;
