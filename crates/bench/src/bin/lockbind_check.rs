//! `lockbind-check` — offline linter for HLS/locking artifacts.
//!
//! Runs the `lockbind-check` pass suite (structured `LBxxxx` diagnostics)
//! outside any experiment, either over freshly-built suite artifacts or
//! over a sweep checkpoint file:
//!
//! * `kernels [FRAMES] [SEED]` — lints every MediaBench kernel × FU class ×
//!   binding algorithm under a standard locking configuration. Obf-aware
//!   and co-design artifacts carry dual certificates, so their rows also
//!   certify matching optimality (Thm. 2). Output is fully deterministic
//!   (no wall times); `results/CHECK_baseline.txt` is the committed golden.
//! * `checkpoint PATH` — validates a sweep checkpoint written by the
//!   engine: header sanity, then every payload must decode under one of
//!   the bench codecs.
//!
//! Exits 1 when any error-severity diagnostic (or malformed checkpoint
//! record) is found, 2 on usage errors.

use std::path::Path;
use std::process::ExitCode;

use lockbind_bench::codec;
use lockbind_bench::PreparedKernel;
use lockbind_check::{audit_netlist, check_artifact, Artifact, AuditSummary, Report};
use lockbind_core::{
    bind_area_aware, bind_obfuscation_aware_certified, bind_power_aware, codesign_heuristic,
    LockingSpec,
};
use lockbind_hls::{binding::bind_naive, FuClass, FuId};
use lockbind_locking::{
    lock_anti_sat, lock_critical_minterms, lock_permutation, lock_rll, lock_sfll_hd, LockError,
    LockedNetlist,
};
use lockbind_mediabench::Kernel;
use lockbind_netlist::builders::{adder_fu, multiplier_fu};
use lockbind_netlist::Netlist;

fn usage() -> &'static str {
    "lockbind-check — offline linter for HLS/locking artifacts\n\
     \n\
     Usage:\n\
     \x20 lockbind-check kernels [FRAMES] [SEED]   lint every suite kernel x binding algorithm\n\
     \x20 lockbind-check audit [FRAMES] [SEED]     LB07xx structural audit, kernel x scheme family\n\
     \x20 lockbind-check checkpoint PATH           validate a sweep checkpoint file\n\
     \n\
     Defaults: FRAMES=60, SEED=5 (the committed goldens in results/CHECK_baseline.txt\n\
     and results/AUDIT_baseline.txt)."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("kernels") => {
            let frames = match args.get(1).map(|s| s.parse::<usize>()) {
                None => 60,
                Some(Ok(n)) => n,
                Some(Err(_)) => return bad_usage("FRAMES must be an integer"),
            };
            let seed = match args.get(2).map(|s| s.parse::<u64>()) {
                None => 5,
                Some(Ok(n)) => n,
                Some(Err(_)) => return bad_usage("SEED must be an integer"),
            };
            lint_kernels(frames, seed)
        }
        Some("audit") => {
            let frames = match args.get(1).map(|s| s.parse::<usize>()) {
                None => 60,
                Some(Ok(n)) => n,
                Some(Err(_)) => return bad_usage("FRAMES must be an integer"),
            };
            let seed = match args.get(2).map(|s| s.parse::<u64>()) {
                None => 5,
                Some(Ok(n)) => n,
                Some(Err(_)) => return bad_usage("SEED must be an integer"),
            };
            audit_kernels(frames, seed)
        }
        Some("checkpoint") => match args.get(1) {
            Some(path) => lint_checkpoint(Path::new(path)),
            None => bad_usage("checkpoint mode needs a PATH"),
        },
        _ => bad_usage("missing or unknown mode"),
    }
}

fn bad_usage(reason: &str) -> ExitCode {
    eprintln!("lockbind-check: {reason}\n\n{}", usage());
    ExitCode::from(2)
}

/// One formatted report row: `clean` or sorted `CODExN` counts.
fn row(report: &Report) -> String {
    if report.diagnostics().is_empty() {
        "clean".to_string()
    } else {
        report
            .counts_by_code()
            .into_iter()
            .map(|(code, count)| format!("{code}x{count}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn lint_kernels(frames: usize, seed: u64) -> ExitCode {
    println!("lockbind-check kernels sweep: frames={frames} seed={seed}");
    println!(
        "{:<12} {:<10} {:<13} verdict",
        "kernel", "class", "algorithm"
    );

    let mut artifacts = 0usize;
    let mut clean = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut tally = |kernel: &str, class: &str, algo: &str, report: &Report| {
        artifacts += 1;
        if report.diagnostics().is_empty() {
            clean += 1;
        }
        errors += report.error_count();
        warnings += report.warning_count();
        println!("{kernel:<12} {class:<10} {algo:<13} {}", row(report));
    };

    for kernel in Kernel::ALL {
        let p = PreparedKernel::new(kernel, frames, seed);
        for class in p.classes() {
            let candidates = p.candidates(class, 8);
            let minterms = candidates[..2.min(candidates.len())].to_vec();
            let spec = match LockingSpec::new(&p.alloc, vec![(FuId::new(class, 0), minterms)]) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("lockbind-check: {kernel:?}/{class}: bad spec: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let class_label = format!("{class:?}");

            // Baseline bindings: structural + locking passes only (no
            // certificate — the matching pass does not apply to bindings
            // that never claimed Eqn. 3 optimality).
            let baselines: [(&str, Result<_, _>); 3] = [
                (
                    "naive",
                    bind_naive(&p.dfg, &p.schedule, &p.alloc).map_err(|e| e.to_string()),
                ),
                (
                    "area-aware",
                    bind_area_aware(&p.dfg, &p.schedule, &p.alloc).map_err(|e| e.to_string()),
                ),
                (
                    "power-aware",
                    bind_power_aware(&p.dfg, &p.schedule, &p.alloc, &p.switching)
                        .map_err(|e| e.to_string()),
                ),
            ];
            for (algo, binding) in baselines {
                let binding = match binding {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("lockbind-check: {kernel:?}/{class}/{algo}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let report = check_artifact(
                    &Artifact::new()
                        .with_dfg(&p.dfg)
                        .with_schedule(&p.schedule)
                        .with_alloc(&p.alloc)
                        .with_binding(&binding)
                        .with_profile(&p.profile)
                        .with_spec(&spec)
                        .with_candidates(&candidates),
                );
                tally(p.name.as_str(), &class_label, algo, &report);
            }

            // Obf-aware: full artifact including the dual certificate, so
            // the matching-optimality pass certifies every cycle.
            let (binding, certificate) = match bind_obfuscation_aware_certified(
                &p.dfg,
                &p.schedule,
                &p.alloc,
                &p.profile,
                &spec,
            ) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("lockbind-check: {kernel:?}/{class}/obf-aware: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = check_artifact(
                &Artifact::new()
                    .with_dfg(&p.dfg)
                    .with_schedule(&p.schedule)
                    .with_alloc(&p.alloc)
                    .with_binding(&binding)
                    .with_profile(&p.profile)
                    .with_spec(&spec)
                    .with_candidates(&candidates)
                    .with_certificate(&certificate),
            );
            tally(p.name.as_str(), &class_label, "obf-aware", &report);

            // Co-design heuristic: its binding must equal the certified
            // rebind for its chosen spec (LB0406 otherwise).
            let design = match codesign_heuristic(
                &p.dfg,
                &p.schedule,
                &p.alloc,
                &p.profile,
                &[FuId::new(class, 0)],
                2.min(candidates.len()),
                &candidates,
            ) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("lockbind-check: {kernel:?}/{class}/codesign-heur: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (_, design_cert) = match bind_obfuscation_aware_certified(
                &p.dfg,
                &p.schedule,
                &p.alloc,
                &p.profile,
                &design.spec,
            ) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("lockbind-check: {kernel:?}/{class}/codesign-heur: rebind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = check_artifact(
                &Artifact::new()
                    .with_dfg(&p.dfg)
                    .with_schedule(&p.schedule)
                    .with_alloc(&p.alloc)
                    .with_binding(&design.binding)
                    .with_profile(&p.profile)
                    .with_spec(&design.spec)
                    .with_candidates(&candidates)
                    .with_certificate(&design_cert),
            );
            tally(p.name.as_str(), &class_label, "codesign-heur", &report);
        }
    }

    println!();
    println!(
        "{artifacts} artifact(s) linted: {clean} clean, {errors} error(s), {warnings} warning(s)"
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The locking-scheme families the audit sweep scores, applied to the
/// kernel's own FU module at its datapath width. The RLL placement seed is
/// the sweep seed, so `audit FRAMES SEED` is fully reproducible.
fn audit_schemes(
    base: &Netlist,
    seed: u64,
) -> [(&'static str, Result<LockedNetlist, LockError>); 5] {
    [
        ("critical-minterm", lock_critical_minterms(base, &[5, 11])),
        ("rll", lock_rll(base, 6, seed)),
        ("anti-sat", lock_anti_sat(base)),
        ("permutation", lock_permutation(base, 2)),
        ("sfll-hd", lock_sfll_hd(base, 5, 1)),
    ]
}

fn audit_kernels(frames: usize, seed: u64) -> ExitCode {
    println!("lockbind-check audit sweep: frames={frames} seed={seed}");
    println!(
        "{:<12} {:<10} {:<16} {:>4} {:>5}  {:<8} verdict",
        "kernel", "class", "scheme", "keys", "nets", "max-skew"
    );

    let mut audited = 0usize;
    let mut clean = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut totals: std::collections::BTreeMap<&'static str, usize> = Default::default();

    for kernel in Kernel::ALL {
        let p = PreparedKernel::new(kernel, frames, seed);
        let width = p.dfg.width();
        for class in p.classes() {
            let base = match class {
                FuClass::Adder => adder_fu(width),
                FuClass::Multiplier => multiplier_fu(width),
            };
            let class_label = format!("{class:?}");
            for (scheme, locked) in audit_schemes(&base, seed) {
                let locked = match locked {
                    Ok(locked) => locked,
                    Err(e) => {
                        eprintln!("lockbind-check: {kernel:?}/{class}/{scheme}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let report = audit_netlist(locked.netlist());
                let summary = AuditSummary::compute(locked.netlist(), &report);
                audited += 1;
                if report.diagnostics().is_empty() {
                    clean += 1;
                }
                errors += report.error_count();
                warnings += report.warning_count();
                for (code, count) in report.counts_by_code() {
                    *totals.entry(code).or_default() += count;
                }
                println!(
                    "{:<12} {:<10} {:<16} {:>4} {:>5}  {:<8.4} {}",
                    p.name,
                    class_label,
                    scheme,
                    summary.keys,
                    summary.nets,
                    summary.max_skew,
                    row(&report)
                );
            }
        }
    }

    println!();
    if !totals.is_empty() {
        let codes: Vec<String> = totals.iter().map(|(c, n)| format!("{c}x{n}")).collect();
        println!("finding totals: {}", codes.join(" "));
    }
    println!(
        "{audited} locked module(s) audited: {clean} clean, {errors} error(s), {warnings} warning(s)"
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_checkpoint(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("lockbind-check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        eprintln!("lockbind-check: {} is empty", path.display());
        return ExitCode::FAILURE;
    };
    let Some(fingerprint) = header_u64(header, "fingerprint") else {
        eprintln!(
            "lockbind-check: {} has no fingerprint header",
            path.display()
        );
        return ExitCode::FAILURE;
    };
    let cells = header_u64(header, "cells").unwrap_or(0);
    let root_seed = header_u64(header, "root_seed").unwrap_or(0);
    println!(
        "checkpoint {}: fingerprint {fingerprint:#018x}, root seed {root_seed}, {cells} cell(s) in grid",
        path.display()
    );

    let entries = match lockbind_engine::checkpoint::load(path, fingerprint) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("lockbind-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut decoded = [0usize; 3]; // headline, error-record, overhead payloads
    let mut malformed = Vec::new();
    for entry in &entries {
        if codec::decode_headline_output(&entry.payload).is_some() {
            decoded[0] += 1;
        } else if codec::decode_error_records(&entry.payload).is_some() {
            decoded[1] += 1;
        } else if codec::decode_overhead_records(&entry.payload).is_some() {
            decoded[2] += 1;
        } else {
            malformed.push(entry.cell);
        }
    }
    println!(
        "{} completed record(s): {} headline, {} error-record, {} overhead, {} malformed",
        entries.len(),
        decoded[0],
        decoded[1],
        decoded[2],
        malformed.len()
    );
    if !malformed.is_empty() {
        for cell in &malformed {
            eprintln!("  cell {cell}: payload does not decode under any bench codec");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Extracts `"key":<u64>` from the single-line JSON checkpoint header.
fn header_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}
