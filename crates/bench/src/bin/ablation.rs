//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Trace skew** — sweep the workload's hot-value probability on a
//!    tunable synthetic kernel and watch the error-increase ratios go from
//!    ~1x (uniform operands: nothing for binding to exploit) into the
//!    paper's 10-150x band (heavily skewed media-like operands).
//! 2. **Ratio smoothing** — sensitivity of the headline ratios to the
//!    Laplace constant used for zero-error baselines.
//! 3. **Register model** — the binding-dependent per-FU register-bank model
//!    vs the binding-independent global left-edge lower bound.
//! 4. **Switching baselines** — power-aware binding vs naive/random binding
//!    switching rates (validates the Fig.-6 power baseline).
//!
//! Parts 1, 3, and 4 run their independent cells on the execution engine
//! (each part keeps its own fixed frames/seed so results stay comparable
//! with the documented deviations); `--threads` controls the pool.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin ablation --
//! [--threads N] [--json PATH] [--fail-fast]`

use lockbind_bench::grid::cached_prepared;
use lockbind_bench::report::render_table;
use lockbind_bench::{ErrorRecord, ExperimentParams, PreparedKernel};
use lockbind_core::{
    bind_area_aware, bind_obfuscation_aware, bind_power_aware, bind_random,
    expected_application_errors, LockingSpec,
};
use lockbind_engine::{Engine, EngineArgs, Job, JobCtx};
use lockbind_hls::metrics::{register_count, register_lower_bound, switching};
use lockbind_hls::{bind_naive, FuClass, FuId};
use lockbind_mediabench::{synthetic_benchmark, Kernel, SkewParams};

const SKEW_HOTS: [f64; 6] = [0.0, 0.3, 0.5, 0.7, 0.9, 0.99];
const SKEW_SEEDS: [u64; 3] = [9, 77, 1234];

/// One synthetic-workload experiment of the skew sweep.
struct SkewCell {
    hot: f64,
    seed: u64,
    params: ExperimentParams,
}

impl Job for SkewCell {
    type Output = Vec<ErrorRecord>;

    fn label(&self) -> String {
        format!("skew/h{:.2}/s{}", self.hot, self.seed)
    }

    fn stage(&self) -> &'static str {
        "skew-sweep"
    }

    fn run(&self, _ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let bench = synthetic_benchmark(
            &SkewParams {
                hot_probability: self.hot,
                lanes: 6,
            },
            400,
            self.seed,
        );
        let prepared = PreparedKernel::from_benchmark(bench);
        lockbind_bench::run_error_experiment(&prepared, &self.params).map_err(|e| e.to_string())
    }
}

fn skew_sweep(engine: &Engine) -> Result<(), Vec<(String, String)>> {
    println!("== 1. trace-skew sweep (synthetic MAC kernel, full Fig.-4-style cell) ==");
    println!("(mean ratios over all configurations and candidate combinations)");
    let params = ExperimentParams {
        num_candidates: 8,
        max_locked_fus: 2,
        max_locked_inputs: 2,
        max_assignments: 400,
        optimal_budget: 0,
        seed: 11,
    };
    let cells: Vec<SkewCell> = SKEW_HOTS
        .iter()
        .flat_map(|&hot| {
            SKEW_SEEDS
                .iter()
                .map(move |&seed| SkewCell { hot, seed, params })
        })
        .collect();
    let report = engine.run(&cells);
    let failures: Vec<(String, String)> = report
        .failures()
        .map(|(c, m)| (c.to_string(), m.to_string()))
        .collect();
    if !failures.is_empty() {
        return Err(failures);
    }

    let mut rows = Vec::new();
    for (hi, &hot) in SKEW_HOTS.iter().enumerate() {
        // Average over the per-hot workload seeds to damp combination luck.
        let mut obf = (0.0, 0.0);
        let mut cd = (0.0, 0.0);
        let mut n = 0.0;
        for result in &report.results[hi * SKEW_SEEDS.len()..(hi + 1) * SKEW_SEEDS.len()] {
            let records = result.output().expect("failures handled above");
            for r in records.iter().filter(|r| r.class == FuClass::Multiplier) {
                match r.algo {
                    lockbind_bench::SecurityAlgo::ObfAware => {
                        obf.0 += r.vs_area;
                        obf.1 += r.vs_power;
                        n += 1.0;
                    }
                    lockbind_bench::SecurityAlgo::CoDesignHeuristic => {
                        cd.0 += r.vs_area;
                        cd.1 += r.vs_power;
                    }
                    lockbind_bench::SecurityAlgo::CoDesignOptimal => {}
                }
            }
        }
        rows.push(vec![
            format!("{hot:.2}"),
            format!("{:.1}x", obf.0 / n),
            format!("{:.1}x", obf.1 / n),
            format!("{:.1}x", cd.0 / n),
            format!("{:.1}x", cd.1 / n),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "hot prob",
                "obf vs area",
                "obf vs power",
                "co-design vs area",
                "co-design vs power"
            ],
            &rows
        )
    );
    println!("(uniform operands leave binding nothing to exploit; media-like skew");
    println!(" pushes the gains into the paper's 10-150x band)");
    Ok(())
}

fn smoothing_sweep() {
    println!("== 2. ratio-smoothing sensitivity (jctrans2 multipliers, 1 FU x 2 inputs) ==");
    let p = PreparedKernel::new(Kernel::Jctrans2, 300, 2021);
    let candidates = p.candidates(FuClass::Multiplier, 10);
    let area = bind_area_aware(&p.dfg, &p.schedule, &p.alloc).expect("feasible");
    let fu = FuId::new(FuClass::Multiplier, 0);

    // Enumerate all C(10,2) combinations; compute mean ratio per constant.
    let combos = lockbind_core::combinations(candidates.len(), 2);
    let mut rows = Vec::new();
    for c in [0.1f64, 0.5, 1.0, 2.0, 5.0] {
        let mut sum = 0.0;
        for combo in &combos {
            let ms: Vec<_> = combo.iter().map(|&i| candidates[i]).collect();
            let spec = LockingSpec::new(&p.alloc, vec![(fu, ms)]).expect("valid");
            let obf = bind_obfuscation_aware(&p.dfg, &p.schedule, &p.alloc, &p.profile, &spec)
                .expect("feasible");
            let e_obf = expected_application_errors(&obf, &p.profile, &spec) as f64;
            let e_area = expected_application_errors(&area, &p.profile, &spec) as f64;
            sum += (c + e_obf) / (c + e_area);
        }
        rows.push(vec![
            format!("{c:.1}"),
            format!("{:.1}x", sum / combos.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["laplace constant", "mean obf-aware vs area ratio"], &rows)
    );
    println!("(many combinations leave the area-aware baseline at ZERO errors, so the");
    println!(" reported magnitude scales roughly as 1/c — the *ordering* between");
    println!(" algorithms and kernels is invariant; we report c = 1 throughout, the");
    println!(" most conservative choice that still counts zero-error baselines)");
    println!();
}

/// One kernel row of the register-model comparison (part 3).
struct RegisterRowCell {
    kernel: Kernel,
}

impl Job for RegisterRowCell {
    type Output = Vec<String>;

    fn label(&self) -> String {
        format!("{}/registers", self.kernel.name())
    }

    fn stage(&self) -> &'static str {
        "register-models"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let p = cached_prepared(ctx.cache, self.kernel, 100, 5);
        let area = bind_area_aware(&p.dfg, &p.schedule, &p.alloc).map_err(|e| e.to_string())?;
        let naive = bind_naive(&p.dfg, &p.schedule, &p.alloc).map_err(|e| e.to_string())?;
        let lb = register_lower_bound(&p.dfg, &p.schedule);
        Ok(vec![
            self.kernel.name().to_string(),
            lb.to_string(),
            register_count(&p.dfg, &p.schedule, &area, &p.alloc).to_string(),
            register_count(&p.dfg, &p.schedule, &naive, &p.alloc).to_string(),
        ])
    }
}

fn register_models(engine: &Engine) -> Result<(), Vec<(String, String)>> {
    println!(
        "== 3. register models: per-FU banks (binding-dependent) vs global left-edge bound =="
    );
    let cells: Vec<RegisterRowCell> = Kernel::ALL
        .into_iter()
        .map(|kernel| RegisterRowCell { kernel })
        .collect();
    let report = engine.run(&cells);
    let failures: Vec<(String, String)> = report
        .failures()
        .map(|(c, m)| (c.to_string(), m.to_string()))
        .collect();
    if !failures.is_empty() {
        return Err(failures);
    }
    let rows: Vec<Vec<String>> = report.outputs().cloned().collect();
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "global lower bound",
                "area-aware (per-FU)",
                "naive (per-FU)"
            ],
            &rows
        )
    );
    println!("(the per-FU model responds to binding choices; the bound does not)");
    println!();
    Ok(())
}

/// One kernel row of the switching-baseline comparison (part 4).
struct SwitchingRowCell {
    kernel: Kernel,
}

impl Job for SwitchingRowCell {
    type Output = Vec<String>;

    fn label(&self) -> String {
        format!("{}/switching", self.kernel.name())
    }

    fn stage(&self) -> &'static str {
        "switching-baselines"
    }

    fn run(&self, ctx: &mut JobCtx<'_>) -> Result<Self::Output, String> {
        let p = cached_prepared(ctx.cache, self.kernel, 150, 5);
        let power = bind_power_aware(&p.dfg, &p.schedule, &p.alloc, &p.switching)
            .map_err(|e| e.to_string())?;
        let naive = bind_naive(&p.dfg, &p.schedule, &p.alloc).map_err(|e| e.to_string())?;
        let random = bind_random(&p.dfg, &p.schedule, &p.alloc, 7).map_err(|e| e.to_string())?;
        let rate = |b| switching(&p.schedule, b, &p.alloc, &p.switching).rate;
        Ok(vec![
            self.kernel.name().to_string(),
            format!("{:.4}", rate(&power)),
            format!("{:.4}", rate(&naive)),
            format!("{:.4}", rate(&random)),
        ])
    }
}

fn switching_baselines(engine: &Engine) -> Result<(), Vec<(String, String)>> {
    println!("== 4. switching rates: power-aware vs naive vs random binding ==");
    let cells: Vec<SwitchingRowCell> =
        [Kernel::Dct, Kernel::Jdmerge4, Kernel::Motion2, Kernel::Fft]
            .into_iter()
            .map(|kernel| SwitchingRowCell { kernel })
            .collect();
    let report = engine.run(&cells);
    let failures: Vec<(String, String)> = report
        .failures()
        .map(|(c, m)| (c.to_string(), m.to_string()))
        .collect();
    if !failures.is_empty() {
        return Err(failures);
    }
    let rows: Vec<Vec<String>> = report.outputs().cloned().collect();
    println!(
        "{}",
        render_table(&["kernel", "power-aware", "naive", "random"], &rows)
    );
    println!("(power-aware must be the column minimum — it is the Fig. 6 baseline)");
    Ok(())
}

fn main() {
    let args = EngineArgs::parse("ablation");
    // One obs session spans all three engine runs of the ablation.
    let obs = args.obs_session();
    let engine = Engine::new(args.engine_config());

    let mut all_failures = Vec::new();
    if let Err(f) = skew_sweep(&engine) {
        all_failures.extend(f);
    }
    println!();
    smoothing_sweep();
    if let Err(f) = register_models(&engine) {
        all_failures.extend(f);
    }
    if let Err(f) = switching_baselines(&engine) {
        all_failures.extend(f);
    }

    if let Err(e) = obs.finish() {
        eprintln!("ablation: cannot write trace: {e}");
        std::process::exit(2);
    }
    if !all_failures.is_empty() {
        eprintln!("[ablation] {} cells FAILED:", all_failures.len());
        for (cell, message) in &all_failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }
}
