//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Trace skew** — sweep the workload's hot-value probability on a
//!    tunable synthetic kernel and watch the error-increase ratios go from
//!    ~1x (uniform operands: nothing for binding to exploit) into the
//!    paper's 10-150x band (heavily skewed media-like operands).
//! 2. **Ratio smoothing** — sensitivity of the headline ratios to the
//!    Laplace constant used for zero-error baselines.
//! 3. **Register model** — the binding-dependent per-FU register-bank model
//!    vs the binding-independent global left-edge lower bound.
//! 4. **Switching baselines** — power-aware binding vs naive/random binding
//!    switching rates (validates the Fig.-6 power baseline).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin ablation`

use lockbind_bench::report::render_table;
use lockbind_bench::PreparedKernel;
use lockbind_core::{
    bind_area_aware, bind_obfuscation_aware, bind_power_aware, bind_random,
    expected_application_errors, LockingSpec,
};
use lockbind_hls::metrics::{register_count, register_lower_bound, switching};
use lockbind_hls::{
    bind_naive, FuClass, FuId,
};
use lockbind_mediabench::{synthetic_benchmark, Kernel, SkewParams};

fn skew_sweep() {
    println!("== 1. trace-skew sweep (synthetic MAC kernel, full Fig.-4-style cell) ==");
    println!("(mean ratios over all configurations and candidate combinations)");
    let params = lockbind_bench::ExperimentParams {
        num_candidates: 8,
        max_locked_fus: 2,
        max_locked_inputs: 2,
        max_assignments: 400,
        optimal_budget: 0,
        seed: 11,
    };
    let mut rows = Vec::new();
    for hot in [0.0, 0.3, 0.5, 0.7, 0.9, 0.99] {
        // Average over several workload seeds to damp combination luck.
        let mut obf = (0.0, 0.0);
        let mut cd = (0.0, 0.0);
        let mut n = 0.0;
        for seed in [9u64, 77, 1234] {
            let bench = synthetic_benchmark(
                &SkewParams {
                    hot_probability: hot,
                    lanes: 6,
                },
                400,
                seed,
            );
            let prepared = PreparedKernel::from_benchmark(bench);
            let records =
                lockbind_bench::run_error_experiment(&prepared, &params).expect("feasible");
            for r in records
                .iter()
                .filter(|r| r.class == FuClass::Multiplier)
            {
                match r.algo {
                    lockbind_bench::SecurityAlgo::ObfAware => {
                        obf.0 += r.vs_area;
                        obf.1 += r.vs_power;
                        n += 1.0;
                    }
                    lockbind_bench::SecurityAlgo::CoDesignHeuristic => {
                        cd.0 += r.vs_area;
                        cd.1 += r.vs_power;
                    }
                    lockbind_bench::SecurityAlgo::CoDesignOptimal => {}
                }
            }
        }
        rows.push(vec![
            format!("{hot:.2}"),
            format!("{:.1}x", obf.0 / n),
            format!("{:.1}x", obf.1 / n),
            format!("{:.1}x", cd.0 / n),
            format!("{:.1}x", cd.1 / n),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "hot prob",
                "obf vs area",
                "obf vs power",
                "co-design vs area",
                "co-design vs power"
            ],
            &rows
        )
    );
    println!("(uniform operands leave binding nothing to exploit; media-like skew");
    println!(" pushes the gains into the paper's 10-150x band)");
}

fn smoothing_sweep() {
    println!("== 2. ratio-smoothing sensitivity (jctrans2 multipliers, 1 FU x 2 inputs) ==");
    let p = PreparedKernel::new(Kernel::Jctrans2, 300, 2021);
    let candidates = p.candidates(FuClass::Multiplier, 10);
    let area = bind_area_aware(&p.dfg, &p.schedule, &p.alloc).expect("feasible");
    let fu = FuId::new(FuClass::Multiplier, 0);

    // Enumerate all C(10,2) combinations; compute mean ratio per constant.
    let combos = lockbind_core::combinations(candidates.len(), 2);
    let mut rows = Vec::new();
    for c in [0.1f64, 0.5, 1.0, 2.0, 5.0] {
        let mut sum = 0.0;
        for combo in &combos {
            let ms: Vec<_> = combo.iter().map(|&i| candidates[i]).collect();
            let spec = LockingSpec::new(&p.alloc, vec![(fu, ms)]).expect("valid");
            let obf = bind_obfuscation_aware(&p.dfg, &p.schedule, &p.alloc, &p.profile, &spec)
                .expect("feasible");
            let e_obf = expected_application_errors(&obf, &p.profile, &spec) as f64;
            let e_area = expected_application_errors(&area, &p.profile, &spec) as f64;
            sum += (c + e_obf) / (c + e_area);
        }
        rows.push(vec![
            format!("{c:.1}"),
            format!("{:.1}x", sum / combos.len() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["laplace constant", "mean obf-aware vs area ratio"], &rows)
    );
    println!("(many combinations leave the area-aware baseline at ZERO errors, so the");
    println!(" reported magnitude scales roughly as 1/c — the *ordering* between");
    println!(" algorithms and kernels is invariant; we report c = 1 throughout, the");
    println!(" most conservative choice that still counts zero-error baselines)");
    println!();
}

fn register_models() {
    println!("== 3. register models: per-FU banks (binding-dependent) vs global left-edge bound ==");
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let p = PreparedKernel::new(kernel, 100, 5);
        let area = bind_area_aware(&p.dfg, &p.schedule, &p.alloc).expect("feasible");
        let naive = bind_naive(&p.dfg, &p.schedule, &p.alloc).expect("feasible");
        let lb = register_lower_bound(&p.dfg, &p.schedule);
        rows.push(vec![
            kernel.name().to_string(),
            lb.to_string(),
            register_count(&p.dfg, &p.schedule, &area, &p.alloc).to_string(),
            register_count(&p.dfg, &p.schedule, &naive, &p.alloc).to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["kernel", "global lower bound", "area-aware (per-FU)", "naive (per-FU)"],
            &rows
        )
    );
    println!("(the per-FU model responds to binding choices; the bound does not)");
    println!();
}

fn switching_baselines() {
    println!("== 4. switching rates: power-aware vs naive vs random binding ==");
    let mut rows = Vec::new();
    for kernel in [Kernel::Dct, Kernel::Jdmerge4, Kernel::Motion2, Kernel::Fft] {
        let p = PreparedKernel::new(kernel, 150, 5);
        let power = bind_power_aware(&p.dfg, &p.schedule, &p.alloc, &p.switching)
            .expect("feasible");
        let naive = bind_naive(&p.dfg, &p.schedule, &p.alloc).expect("feasible");
        let random = bind_random(&p.dfg, &p.schedule, &p.alloc, 7).expect("feasible");
        let rate = |b| switching(&p.schedule, b, &p.alloc, &p.switching).rate;
        rows.push(vec![
            kernel.name().to_string(),
            format!("{:.4}", rate(&power)),
            format!("{:.4}", rate(&naive)),
            format!("{:.4}", rate(&random)),
        ]);
    }
    println!(
        "{}",
        render_table(&["kernel", "power-aware", "naive", "random"], &rows)
    );
    println!("(power-aware must be the column minimum — it is the Fig. 6 baseline)");
}

fn main() {
    skew_sweep();
    println!();
    smoothing_sweep();
    register_models();
    switching_baselines();
}
