//! CDCL solver workload benchmark: runs the full oracle-guided SAT attack
//! against the locking schemes whose resilience sweeps dominate benchmark
//! wall-clock (point-function / Anti-SAT locks, plus RLL and permutation
//! controls), and records conflicts / propagations / wall-clock per scheme
//! to `results/BENCH_solver.json` next to the frozen pre-modernization
//! baseline, so solver speedups are pinned by data instead of asserted.
//!
//! Wall-clock is the minimum over `--repeats` runs (minimum, not mean: the
//! solver is deterministic, so the fastest run is the one with the least
//! scheduler noise). Stdout prints only deterministic work counts; timing
//! goes to the JSON file and stderr.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin solver_bench --
//! [--smoke] [--repeats N] [--json PATH] [--only WORKLOAD]`
//!
//! `--smoke` runs a reduced grid (width-3 operands, one repeat) and prints
//! the deterministic verdict summary CI diffs against
//! `results/BENCH_solver_smoke.txt`.

use std::path::PathBuf;
use std::time::Instant;

use lockbind_attacks::{sat_attack, AttackConfig, SatAttackOutcome};
use lockbind_bench::report::render_table;
use lockbind_locking::{
    lock_anti_sat, lock_critical_minterms, lock_permutation, lock_rll, LockedNetlist,
};
use lockbind_netlist::builders::adder_fu;
use lockbind_obs::json::Json;

/// The frozen pre-modernization reference (MiniSat-2005-style solver,
/// commit `0ebabe9`, this machine, release build, minimum of 3 runs of the
/// full grid). Regenerate only when intentionally re-baselining:
/// these numbers are what "the solver got faster" is measured against.
const BASELINE: &[(&str, f64, u64, u64)] = &[
    // (workload, wall_ms, conflicts, propagations)
    ("point-function", 78198.12, 18374, 367105456),
    ("anti-sat", 21146.12, 2430, 75481535),
    ("rll", 0.77, 143, 3817),
    ("permutation", 77.35, 4367, 449426),
];

struct Workload {
    name: &'static str,
    lock: fn(smoke: bool) -> LockedNetlist,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "point-function",
            lock: |smoke| {
                let w = if smoke { 3 } else { 5 };
                lock_critical_minterms(&adder_fu(w), &[5, 11, 23]).expect("lockable")
            },
        },
        Workload {
            name: "anti-sat",
            lock: |smoke| lock_anti_sat(&adder_fu(if smoke { 3 } else { 5 })).expect("lockable"),
        },
        Workload {
            name: "rll",
            lock: |smoke| {
                let (w, gates) = if smoke { (3, 6) } else { (6, 12) };
                lock_rll(&adder_fu(w), gates, 42).expect("lockable")
            },
        },
        Workload {
            name: "permutation",
            lock: |smoke| {
                lock_permutation(&adder_fu(if smoke { 3 } else { 4 }), 4).expect("lockable")
            },
        },
    ]
}

struct Measurement {
    name: &'static str,
    wall_ms: f64,
    outcome: SatAttackOutcome,
}

fn measure(w: &Workload, smoke: bool, repeats: u32) -> Measurement {
    let mut best: Option<(f64, SatAttackOutcome)> = None;
    for _ in 0..repeats.max(1) {
        let locked = (w.lock)(smoke);
        let started = Instant::now();
        let out = sat_attack(&locked, &AttackConfig::default());
        let ms = started.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(b, _)| ms < *b) {
            best = Some((ms, out));
        }
    }
    let (wall_ms, outcome) = best.expect("at least one repeat");
    Measurement {
        name: w.name,
        wall_ms,
        outcome,
    }
}

fn main() {
    let mut smoke = false;
    let mut repeats = 3u32;
    let mut only = String::new();
    let mut json_path = PathBuf::from("results/BENCH_solver.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a positive integer");
            }
            "--json" => {
                json_path = args.next().map(PathBuf::from).expect("--json needs a path");
            }
            "--only" => {
                only = args.next().expect("--only needs a workload name");
            }
            other => {
                eprintln!("solver_bench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        repeats = 1;
    }

    let measurements: Vec<Measurement> = workloads()
        .iter()
        .filter(|w| only.is_empty() || w.name == only)
        .map(|w| measure(w, smoke, repeats))
        .collect();
    if measurements.is_empty() {
        eprintln!("solver_bench: no workload matches --only {only:?}");
        std::process::exit(2);
    }

    // Deterministic verdict summary (work counts only — no wall clock), the
    // golden surface CI diffs.
    let mut rows = Vec::new();
    for m in &measurements {
        let st = m.outcome.solver_stats;
        rows.push(vec![
            m.name.to_string(),
            if m.outcome.success { "yes" } else { "no" }.to_string(),
            m.outcome.iterations.to_string(),
            st.conflicts.to_string(),
            st.propagations.to_string(),
            st.decisions.to_string(),
            st.restarts.to_string(),
            st.gc_runs.to_string(),
        ]);
    }
    println!(
        "solver workload verdicts ({} grid):",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "key found",
                "DIPs",
                "conflicts",
                "propagations",
                "decisions",
                "restarts",
                "gc runs",
            ],
            &rows
        )
    );

    for m in &measurements {
        let st = m.outcome.solver_stats;
        eprintln!(
            "[solver_bench] {:<16} {:8.2} ms  visits {}  blocker hit-rate {:.3}",
            m.name,
            m.wall_ms,
            st.watcher_visits,
            st.blocker_hit_rate()
        );
    }

    if smoke {
        return;
    }

    let current: Vec<Json> = measurements
        .iter()
        .map(|m| {
            let st = m.outcome.solver_stats;
            Json::obj([
                ("workload", Json::from(m.name)),
                ("wall_ms", Json::Float(m.wall_ms)),
                ("iterations", Json::UInt(m.outcome.iterations)),
                ("conflicts", Json::UInt(st.conflicts)),
                ("propagations", Json::UInt(st.propagations)),
                ("decisions", Json::UInt(st.decisions)),
                ("restarts", Json::UInt(st.restarts)),
                ("gc_runs", Json::UInt(st.gc_runs)),
                ("watcher_visits", Json::UInt(st.watcher_visits)),
                ("blocker_hits", Json::UInt(st.blocker_hits)),
                ("blocker_hit_rate", Json::Float(st.blocker_hit_rate())),
                (
                    "glue_hist",
                    Json::arr(st.glue_hist.iter().map(|&c| Json::from(c))),
                ),
                ("success", Json::Bool(m.outcome.success)),
            ])
        })
        .collect();

    let baseline: Vec<Json> = BASELINE
        .iter()
        .map(|&(name, wall_ms, conflicts, propagations)| {
            Json::obj([
                ("workload", Json::from(name)),
                ("wall_ms", Json::Float(wall_ms)),
                ("conflicts", Json::UInt(conflicts)),
                ("propagations", Json::UInt(propagations)),
            ])
        })
        .collect();

    let speedups: Vec<Json> = measurements
        .iter()
        .filter_map(|m| {
            let (_, base_wall, _, base_props) =
                BASELINE.iter().find(|(n, ..)| *n == m.name).copied()?;
            let st = m.outcome.solver_stats;
            Json::obj([
                ("workload", Json::from(m.name)),
                ("wall_speedup", Json::Float(base_wall / m.wall_ms)),
                (
                    "propagation_reduction",
                    Json::Float(1.0 - st.propagations as f64 / base_props as f64),
                ),
            ])
            .into()
        })
        .collect();

    let doc = Json::obj([
        ("schema_version", Json::UInt(1)),
        ("baseline_commit", Json::from("0ebabe9")),
        ("baseline", Json::Array(baseline)),
        ("current", Json::Array(current)),
        ("speedup", Json::Array(speedups)),
    ]);
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&json_path, doc.render() + "\n") {
        eprintln!("solver_bench: cannot write {}: {e}", json_path.display());
        std::process::exit(2);
    }
    eprintln!("[solver_bench] results written to {}", json_path.display());
}
