//! Error *quality* experiment (Sec. III-B of the paper): security-aware
//! binding does not only inject more errors, it injects them in more
//! schedule cycles and in longer consecutive runs — the properties that
//! defeat application-level error resilience (\[15\] in the paper).
//!
//! For each kernel, the same co-designed locking spec is evaluated under
//! the co-design binding and under area-aware binding, replaying the
//! workload and comparing temporal impact statistics.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin app_impact [frames]`

use lockbind_bench::report::render_table;
use lockbind_bench::PreparedKernel;
use lockbind_core::{application_impact, bind_area_aware, codesign_heuristic};
use lockbind_hls::{FuClass, FuId};
use lockbind_mediabench::Kernel;

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);

    println!("Application-level error quality: co-design vs area-aware binding");
    println!("(same locking configuration; replayed over {frames} frames)");
    println!();

    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let p = PreparedKernel::new(kernel, frames, 2021);
        let bench = kernel.benchmark(frames, 2021);
        let class = if p.alloc.count(FuClass::Multiplier) > 0 {
            FuClass::Multiplier
        } else {
            FuClass::Adder
        };
        let candidates = p.candidates(class, 10);
        let fus = [FuId::new(class, 0), FuId::new(class, 1)];
        let design = codesign_heuristic(
            &p.dfg,
            &p.schedule,
            &p.alloc,
            &p.profile,
            &fus,
            2,
            &candidates,
        )
        .expect("feasible");
        let area = bind_area_aware(&p.dfg, &p.schedule, &p.alloc).expect("feasible");

        let sec = application_impact(
            &p.dfg,
            &p.schedule,
            &design.binding,
            &design.spec,
            &bench.trace,
        )
        .expect("replay");
        let base = application_impact(&p.dfg, &p.schedule, &area, &design.spec, &bench.trace)
            .expect("replay");

        rows.push(vec![
            kernel.name().to_string(),
            format!("{:.2}", sec.frame_error_rate()),
            format!("{:.2}", base.frame_error_rate()),
            sec.max_consecutive_frames.to_string(),
            base.max_consecutive_frames.to_string(),
            sec.distinct_cycles_with_errors.to_string(),
            base.distinct_cycles_with_errors.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "frame err (sec)",
                "frame err (area)",
                "max run (sec)",
                "max run (area)",
                "cycles hit (sec)",
                "cycles hit (area)",
            ],
            &rows
        )
    );
    println!();
    println!("Security-aware binding should dominate every paired column: more frames");
    println!("affected, longer consecutive error runs, more schedule cycles corrupted.");
}
