//! Regenerates **Fig. 6**: design overhead of the security-aware binding
//! algorithms — register-count increase over area-aware binding (top) and
//! switching-rate increase over power-aware binding (bottom), per benchmark
//! and averaged (paper: ~+4.7 registers, ~+0.03 switching rate).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin fig6 --
//! [FRAMES] [SEED] [--threads N] [--json PATH] [--fail-fast]`

use lockbind_bench::report::render_table;
use lockbind_bench::{OverheadCell, SecurityAlgo};
use lockbind_engine::{CellResult, Engine, EngineArgs};
use lockbind_mediabench::Kernel;

fn main() {
    let args = EngineArgs::parse("fig6");
    let obs = args.obs_session();

    println!("Fig. 6 — design overhead of security-aware binding");
    println!();

    let engine = Engine::new(args.engine_config());
    let cells: Vec<OverheadCell> = Kernel::ALL
        .into_iter()
        .map(|kernel| OverheadCell {
            kernel,
            frames: args.frames,
            seed: args.seed,
            num_candidates: 10,
        })
        .collect();
    let report = engine.run(&cells);

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    let mut failures = Vec::new();
    let mut measured = 0usize;
    for (cell, result) in cells.iter().zip(&report.results) {
        let records = match result {
            CellResult::Ok { output, .. } => output,
            CellResult::Failed { cell, message } => {
                failures.push((cell.clone(), message.clone()));
                continue;
            }
            CellResult::TimedOut { cell, message } => {
                failures.push((cell.clone(), format!("timed out: {message}")));
                continue;
            }
        };
        let get = |algo: SecurityAlgo| -> (f64, f64) {
            records
                .iter()
                .find(|r| r.algo == algo)
                .map(|r| (r.register_increase, r.switching_increase))
                .unwrap_or((f64::NAN, f64::NAN))
        };
        let (obf_reg, obf_sw) = get(SecurityAlgo::ObfAware);
        let (cd_reg, cd_sw) = get(SecurityAlgo::CoDesignHeuristic);
        sums[0] += obf_reg;
        sums[1] += cd_reg;
        sums[2] += obf_sw;
        sums[3] += cd_sw;
        measured += 1;
        rows.push(vec![
            cell.kernel.name().to_string(),
            format!("{obf_reg:+.2}"),
            format!("{cd_reg:+.2}"),
            format!("{obf_sw:+.4}"),
            format!("{cd_sw:+.4}"),
        ]);
    }
    let n = measured.max(1) as f64;
    rows.push(vec![
        "Avg.".to_string(),
        format!("{:+.2}", sums[0] / n),
        format!("{:+.2}", sums[1] / n),
        format!("{:+.4}", sums[2] / n),
        format!("{:+.4}", sums[3] / n),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "Δregisters obf-aware",
                "Δregisters co-design",
                "Δswitching obf-aware",
                "Δswitching co-design",
            ],
            &rows
        )
    );
    println!("(registers vs area-aware binding; switching rate vs power-aware binding)");

    eprintln!("[fig6] {}", report.metrics.summary());
    if let Some(path) = &args.json {
        if let Err(e) = report.metrics.write_json(path) {
            eprintln!("fig6: cannot write metrics to {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("[fig6] metrics written to {}", path.display());
    }
    if let Err(e) = obs.finish() {
        eprintln!("fig6: cannot write trace: {e}");
        std::process::exit(2);
    }
    if !failures.is_empty() {
        eprintln!("[fig6] {} cells FAILED:", failures.len());
        for (cell, message) in &failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }
}
