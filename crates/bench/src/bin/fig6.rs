//! Regenerates **Fig. 6**: design overhead of the security-aware binding
//! algorithms — register-count increase over area-aware binding (top) and
//! switching-rate increase over power-aware binding (bottom), per benchmark
//! and averaged (paper: ~+4.7 registers, ~+0.03 switching rate).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin fig6 [frames] [seed]`

use lockbind_bench::report::render_table;
use lockbind_bench::{measure_overhead, PreparedKernel, SecurityAlgo};

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2021);

    println!("Fig. 6 — design overhead of security-aware binding");
    println!();

    let suite = PreparedKernel::suite(frames, seed);
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for p in &suite {
        let records = measure_overhead(p, 10).expect("feasible");
        let get = |algo: SecurityAlgo| -> (f64, f64) {
            records
                .iter()
                .find(|r| r.algo == algo)
                .map(|r| (r.register_increase, r.switching_increase))
                .unwrap_or((f64::NAN, f64::NAN))
        };
        let (obf_reg, obf_sw) = get(SecurityAlgo::ObfAware);
        let (cd_reg, cd_sw) = get(SecurityAlgo::CoDesignHeuristic);
        sums[0] += obf_reg;
        sums[1] += cd_reg;
        sums[2] += obf_sw;
        sums[3] += cd_sw;
        rows.push(vec![
            p.name.clone(),
            format!("{obf_reg:+.2}"),
            format!("{cd_reg:+.2}"),
            format!("{obf_sw:+.4}"),
            format!("{cd_sw:+.4}"),
        ]);
    }
    let n = suite.len() as f64;
    rows.push(vec![
        "Avg.".to_string(),
        format!("{:+.2}", sums[0] / n),
        format!("{:+.2}", sums[1] / n),
        format!("{:+.4}", sums[2] / n),
        format!("{:+.4}", sums[3] / n),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "Δregisters obf-aware",
                "Δregisters co-design",
                "Δswitching obf-aware",
                "Δswitching co-design",
            ],
            &rows
        )
    );
    println!("(registers vs area-aware binding; switching rate vs power-aware binding)");
}
