//! Regenerates **Fig. 4** of the paper: per-benchmark increase in
//! application errors caused by locking for (top) obfuscation-aware binding
//! and (bottom) binding-obfuscation co-design, vs area-aware and power-aware
//! binding, adders and multipliers separately.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin fig4 --
//! [FRAMES] [SEED] [--threads N] [--json PATH] [--fail-fast]`

use lockbind_bench::errors_experiment::geomean;
use lockbind_bench::report::{fmt_ratio, render_table};
use lockbind_bench::{collect_error_records, error_grid, ExperimentParams, SecurityAlgo};
use lockbind_engine::{Engine, EngineArgs};
use lockbind_hls::FuClass;
use lockbind_mediabench::Kernel;

fn main() {
    let args = EngineArgs::parse("fig4");
    let params = ExperimentParams::default();
    let obs = args.obs_session();

    println!("Fig. 4 — increase in application errors of locking (x over baseline)");
    println!(
        "workload: {} frames, seed {}; candidates: {}",
        args.frames, args.seed, params.num_candidates
    );
    println!();

    let engine = Engine::new(args.engine_config());
    let cells = error_grid(&Kernel::ALL, args.frames, args.seed, &params);
    let report = engine.run(&cells);
    let (all_records, failures) = collect_error_records(&report.results);

    for (title, algo) in [
        (
            "Obfuscation-Aware Binding over Area/Power-Aware Binding",
            SecurityAlgo::ObfAware,
        ),
        (
            "Binding-Obfuscation Co-Design over Area/Power-Aware Binding",
            SecurityAlgo::CoDesignHeuristic,
        ),
    ] {
        println!("== {title} ==");
        let headers = [
            "benchmark",
            "add vs area",
            "add vs power",
            "mul vs area",
            "mul vs power",
        ];
        let mut rows = Vec::new();
        let mut kernel_means = Vec::new();
        for kernel in Kernel::ALL {
            let name = kernel.name();
            let mut cell = |class: FuClass, vs_area: bool| -> String {
                let vals: Vec<f64> = all_records
                    .iter()
                    .filter(|r| r.kernel == name && r.class == class && r.algo == algo)
                    .map(|r| if vs_area { r.vs_area } else { r.vs_power })
                    .collect();
                if vals.is_empty() {
                    "-".to_string()
                } else {
                    let g = geomean(vals.iter().copied());
                    kernel_means.push(g);
                    fmt_ratio(g)
                }
            };
            rows.push(vec![
                name.to_string(),
                cell(FuClass::Adder, true),
                cell(FuClass::Adder, false),
                cell(FuClass::Multiplier, true),
                cell(FuClass::Multiplier, false),
            ]);
        }
        let avg = geomean(kernel_means.iter().copied());
        rows.push(vec![
            "Avg.".to_string(),
            String::new(),
            String::new(),
            String::new(),
            fmt_ratio(avg),
        ]);
        println!("{}", render_table(&headers, &rows));
    }

    eprintln!("[fig4] {}", report.metrics.summary());
    if let Some(path) = &args.json {
        if let Err(e) = report.metrics.write_json(path) {
            eprintln!("fig4: cannot write metrics to {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("[fig4] metrics written to {}", path.display());
    }
    if let Err(e) = obs.finish() {
        eprintln!("fig4: cannot write trace: {e}");
        std::process::exit(2);
    }
    if !failures.is_empty() {
        eprintln!("[fig4] {} cells FAILED:", failures.len());
        for (cell, message) in &failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }
}
