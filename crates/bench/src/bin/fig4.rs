//! Regenerates **Fig. 4** of the paper: per-benchmark increase in
//! application errors caused by locking for (top) obfuscation-aware binding
//! and (bottom) binding-obfuscation co-design, vs area-aware and power-aware
//! binding, adders and multipliers separately.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin fig4 [frames] [seed]`

use lockbind_bench::errors_experiment::geomean;
use lockbind_bench::report::{fmt_ratio, render_table};
use lockbind_bench::{run_error_experiment, ExperimentParams, PreparedKernel, SecurityAlgo};
use lockbind_hls::FuClass;

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2021);
    let params = ExperimentParams::default();

    println!("Fig. 4 — increase in application errors of locking (x over baseline)");
    println!("workload: {frames} frames, seed {seed}; candidates: {}", params.num_candidates);
    println!();

    let suite = PreparedKernel::suite(frames, seed);
    let mut all_records = Vec::new();
    for p in &suite {
        let recs = run_error_experiment(p, &params).expect("suite kernels are feasible");
        all_records.extend(recs);
    }

    for (title, algo) in [
        ("Obfuscation-Aware Binding over Area/Power-Aware Binding", SecurityAlgo::ObfAware),
        (
            "Binding-Obfuscation Co-Design over Area/Power-Aware Binding",
            SecurityAlgo::CoDesignHeuristic,
        ),
    ] {
        println!("== {title} ==");
        let headers = [
            "benchmark",
            "add vs area",
            "add vs power",
            "mul vs area",
            "mul vs power",
        ];
        let mut rows = Vec::new();
        let mut kernel_means = Vec::new();
        for p in &suite {
            let name = p.name.as_str();
            let mut cell = |class: FuClass, vs_area: bool| -> String {
                let vals: Vec<f64> = all_records
                    .iter()
                    .filter(|r| r.kernel == name && r.class == class && r.algo == algo)
                    .map(|r| if vs_area { r.vs_area } else { r.vs_power })
                    .collect();
                if vals.is_empty() {
                    "-".to_string()
                } else {
                    let g = geomean(vals.iter().copied());
                    kernel_means.push(g);
                    fmt_ratio(g)
                }
            };
            rows.push(vec![
                name.to_string(),
                cell(FuClass::Adder, true),
                cell(FuClass::Adder, false),
                cell(FuClass::Multiplier, true),
                cell(FuClass::Multiplier, false),
            ]);
        }
        let avg = geomean(kernel_means.iter().copied());
        rows.push(vec![
            "Avg.".to_string(),
            String::new(),
            String::new(),
            String::new(),
            fmt_ratio(avg),
        ]);
        println!("{}", render_table(&headers, &rows));
    }
}
