//! **Eqn.-1 validation** (Sec. II-A): runs real SAT attacks on locked FU
//! netlists and compares measured DIP iterations against the analytic
//! trade-off model, demonstrating the corruption/resilience dilemma the
//! paper's binding approach escapes:
//!
//! * critical-minterm locking: tiny ε, iterations ~ key space,
//! * RLL: huge ε, unlocked in a handful of iterations,
//! * Anti-SAT: tiny ε, iterations ~ 2^n with near-zero corruption.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin sat_resilience [width]`
//! (default operand width 3 bits keeps full attacks under a second each).

use lockbind_attacks::{random_query_attack, sat_attack, AttackConfig};
use lockbind_bench::report::render_table;
use lockbind_locking::corruption::average_wrong_key_error_rate;
use lockbind_locking::{
    expected_sat_iterations, lock_anti_sat, lock_critical_minterms, lock_permutation, lock_rll,
};
use lockbind_netlist::builders::{adder_fu, multiplier_fu};

fn main() {
    let width: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let input_bits = 2 * width;

    println!("SAT-attack resilience vs corruption (operand width {width} bits,");
    println!("{input_bits}-bit FU input space) — the Eqn. 1 trade-off, measured");
    println!();

    let mut rows = Vec::new();
    let adder = adder_fu(width);
    let mult = multiplier_fu(width);

    let mut run = |name: String, locked: lockbind_locking::LockedNetlist| {
        let eps = average_wrong_key_error_rate(&locked, input_bits, 24, 7);
        let analytic = if eps > 0.0 && eps < 1.0 {
            expected_sat_iterations(locked.key_bits() as u32, 1, eps)
        } else {
            f64::NAN
        };
        let out = sat_attack(&locked, &AttackConfig::default());
        let rq = random_query_attack(&locked, 64, 5);
        rows.push(vec![
            name,
            locked.key_bits().to_string(),
            format!("{eps:.4}"),
            format!("{analytic:.0}"),
            out.iterations.to_string(),
            if out.success { "yes" } else { "CAP" }.to_string(),
            if rq.success { "yes" } else { "no" }.to_string(),
        ]);
    };

    for n in 1..=3usize {
        let minterms: Vec<u64> = (0..n as u64)
            .map(|i| (i * 37 + 5) % (1 << input_bits))
            .collect();
        run(
            format!("critical-minterm adder ({n} inp.)"),
            lock_critical_minterms(&adder, &minterms).expect("lockable"),
        );
    }
    run(
        "critical-minterm multiplier (1 inp.)".into(),
        lock_critical_minterms(&mult, &[9]).expect("lockable"),
    );
    run(
        "rll adder (8 key gates)".into(),
        lock_rll(&adder, 8, 42).expect("lockable"),
    );
    run(
        "anti-sat adder".into(),
        lock_anti_sat(&adder).expect("lockable"),
    );
    run(
        "permutation adder (2 stages)".into(),
        lock_permutation(&adder, 2).expect("lockable"),
    );

    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "key bits",
                "measured eps",
                "Eqn.1 lambda",
                "SAT iters",
                "key found",
                "random-query breaks",
            ],
            &rows
        )
    );
    println!("Reading: low eps => many SAT iterations (resilient, little corruption);");
    println!("high eps (RLL/permutation) => broken in a handful of iterations.");

    // Per-iteration hardness: the Full-Lock-family property (Sec. V-C) is
    // that each SAT iteration gets *expensive*, independent of the count.
    println!();
    println!("Per-iteration hardness (mean solver conflicts per DIP search):");
    let mut rows3 = Vec::new();
    for stages in [1usize, 2, 3, 4] {
        let locked = lock_permutation(&adder, stages).expect("lockable");
        let out = sat_attack(&locked, &AttackConfig::default());
        rows3.push(vec![
            format!("permutation x{stages}"),
            locked.key_bits().to_string(),
            out.iterations.to_string(),
            format!("{:.1}", out.mean_conflicts_per_iteration()),
            out.solver_stats.conflicts.to_string(),
        ]);
    }
    {
        let locked = lock_critical_minterms(&adder, &[5]).expect("lockable");
        let out = sat_attack(&locked, &AttackConfig::default());
        rows3.push(vec![
            "critical-minterm (ref)".into(),
            locked.key_bits().to_string(),
            out.iterations.to_string(),
            format!("{:.1}", out.mean_conflicts_per_iteration()),
            out.solver_stats.conflicts.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "key bits",
                "iters",
                "conflicts/iter",
                "total conflicts"
            ],
            &rows3
        )
    );

    // Approximate-attack view: budgeted AppSAT-style runs against the
    // critical-minterm lock. Residual error stays pinned to the protected
    // minterms — the error the binding algorithms amplify at the
    // application level.
    println!();
    println!("Approximate (AppSAT-style) attacks on the 2-input critical-minterm lock:");
    let locked = lock_critical_minterms(&adder, &[5, 11]).expect("lockable");
    let mut rows2 = Vec::new();
    for (dips, rand_q) in [(0u64, 8u64), (2, 8), (8, 16), (10_000, 0)] {
        let out = lockbind_attacks::approximate_sat_attack(&locked, dips, rand_q, 3);
        rows2.push(vec![
            format!("{dips} DIPs + {rand_q} random"),
            out.iterations.to_string(),
            format!("{:.4}", out.residual_error_rate),
            if out.exact { "exact" } else { "approximate" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["budget", "DIPs used", "residual error rate", "key quality"],
            &rows2
        )
    );
}
