//! Benchmark-suite shape statistics (the prose numbers of Sec. VI of the
//! paper: "The resulting DFGs contained an average of 18.6 add and 10.6
//! multiply operations spanning 13.5 cycles", scheduled onto up to 3 FUs).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin suite_stats`

use lockbind_bench::report::render_table;
use lockbind_hls::{schedule_list, Allocation, FuClass};
use lockbind_mediabench::{Kernel, SuiteStats};

fn main() {
    let mut rows = Vec::new();
    for k in Kernel::ALL {
        let dfg = k.build_dfg();
        let (adds, muls) = dfg.op_mix();
        let alloc = Allocation::new(3, if muls > 0 { 3 } else { 0 });
        let sched = schedule_list(&dfg, &alloc).expect("schedulable");
        rows.push(vec![
            k.name().to_string(),
            dfg.num_inputs().to_string(),
            adds.to_string(),
            muls.to_string(),
            sched.num_cycles().to_string(),
            sched.max_concurrency(&dfg, FuClass::Adder).to_string(),
            sched.max_concurrency(&dfg, FuClass::Multiplier).to_string(),
        ]);
    }
    let s = SuiteStats::for_all_kernels();
    rows.push(vec![
        "Avg.".to_string(),
        String::new(),
        format!("{:.1}", s.avg_adds),
        format!("{:.1}", s.avg_muls),
        format!("{:.1}", s.avg_cycles),
        String::new(),
        String::new(),
    ]);

    println!("Benchmark suite shape (paper: avg 18.6 adds, 10.6 muls, 13.5 cycles)");
    println!();
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "inputs",
                "adder ops",
                "mul ops",
                "cycles",
                "peak adders",
                "peak muls"
            ],
            &rows
        )
    );
}
