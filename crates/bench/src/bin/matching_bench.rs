//! Matching/co-design stage benchmark: runs the full error-cell grid (the
//! headline benchmark's dominant stage) and records the incremental
//! solver's work profile — cold vs warm solves, augmentation steps,
//! combinations evaluated vs pruned, and the warm-start hit rate — next to
//! the frozen pre-incremental baseline in `results/BENCH_matching.json`,
//! so the matching-stage speedup is pinned by data instead of asserted.
//!
//! Stdout prints only deterministic work counters (identical across thread
//! counts and machines for fixed `FRAMES`/`SEED`); wall-clock goes to the
//! JSON file and stderr.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin matching_bench --
//! [FRAMES] [SEED] [--threads N] [--json PATH]`
//!
//! The defaults (300 frames, seed 2021) reproduce the baseline
//! configuration exactly.

use std::path::PathBuf;
use std::time::Instant;

use lockbind_bench::{collect_error_records, error_grid, ExperimentParams};
use lockbind_engine::{Engine, EngineArgs};
use lockbind_mediabench::Kernel;
use lockbind_obs::json::Json;
use lockbind_obs::Registry;

/// The frozen pre-incremental reference (cold Hungarian solve per
/// combination, commit `848f8e3`, this machine, release build, `headline
/// 300 2021 --threads 2`, error-cell stage). Regenerate only when
/// intentionally re-baselining: these numbers are what "the matching stage
/// got faster" is measured against.
mod baseline {
    pub const COMMIT: &str = "848f8e3";
    pub const WALL_SECONDS: f64 = 17.566052513;
    pub const COLD_SOLVES: u64 = 6_382_590;
    pub const WARM_SOLVES: u64 = 0;
    pub const AUGMENT_STEPS: u64 = 27_974_350;
    pub const COMBOS_EVALUATED: u64 = 394_058;
    pub const COMBOS_PRUNED: u64 = 0;
    pub const OBF_AWARE_BINDS: u64 = 547_033;
    pub const WARM_HIT_RATE: f64 = 0.0;
}

/// Work counters the benchmark snapshots before and after the grid run.
const COUNTERS: &[&str] = &[
    "matching.solves",
    "matching.warm_solves",
    "matching.warm_rows_total",
    "matching.warm_rows_reaugmented",
    "matching.augment_steps",
    "codesign.combos_evaluated",
    "codesign.combos_pruned",
    "bind.obf_aware.calls",
];

fn snapshot() -> Vec<u64> {
    COUNTERS
        .iter()
        .map(|name| Registry::global().counter(name).get())
        .collect()
}

fn main() {
    let args = EngineArgs::parse("matching_bench");
    let params = ExperimentParams::default();
    let obs = args.obs_session();

    let engine = Engine::new(args.engine_config());
    let cells = error_grid(&Kernel::ALL, args.frames, args.seed, &params);
    let before = snapshot();
    let started = Instant::now();
    let report = engine.run(&cells);
    let wall_seconds = started.elapsed().as_secs_f64();
    let after = snapshot();
    let delta: Vec<u64> = after
        .iter()
        .zip(&before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let get = |name: &str| delta[COUNTERS.iter().position(|c| *c == name).expect("known")];

    let (records, failures) = collect_error_records(&report.results);
    if !failures.is_empty() {
        eprintln!("[matching_bench] {} cells FAILED:", failures.len());
        for (cell, message) in &failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }

    let cold = get("matching.solves");
    let warm = get("matching.warm_solves");
    let rows_total = get("matching.warm_rows_total");
    let rows_reaugmented = get("matching.warm_rows_reaugmented");
    let warm_hit_rate = if rows_total == 0 {
        0.0
    } else {
        1.0 - rows_reaugmented as f64 / rows_total as f64
    };
    let evaluated = get("codesign.combos_evaluated");
    let pruned = get("codesign.combos_pruned");

    // Deterministic work profile — the surface that CI can diff.
    println!(
        "matching/co-design stage work profile ({} cells, {} records):",
        report.results.len(),
        records.len()
    );
    println!("  cold solves            : {cold}");
    println!("  warm solves            : {warm}");
    println!("  rows re-augmented      : {rows_reaugmented} / {rows_total}");
    println!(
        "  augment steps          : {}",
        get("matching.augment_steps")
    );
    println!("  combos evaluated       : {evaluated}");
    println!("  combos pruned          : {pruned}");
    println!("  combos total           : {}", evaluated + pruned);
    println!("  obf-aware binds        : {}", get("bind.obf_aware.calls"));
    println!("  warm-start hit rate    : {warm_hit_rate:.4}");

    eprintln!(
        "[matching_bench] stage wall {wall_seconds:.3}s vs baseline {:.3}s = {:.2}x ({})",
        baseline::WALL_SECONDS,
        baseline::WALL_SECONDS / wall_seconds,
        report.metrics.summary()
    );

    let doc = Json::obj([
        ("schema_version", Json::UInt(1)),
        ("frames", Json::UInt(args.frames as u64)),
        ("root_seed", Json::UInt(args.seed)),
        (
            "baseline",
            Json::obj([
                ("commit", Json::from(baseline::COMMIT)),
                (
                    "source",
                    Json::from("headline 300 2021 --threads 2, error-cell stage"),
                ),
                ("wall_seconds", Json::Float(baseline::WALL_SECONDS)),
                ("cold_solves", Json::UInt(baseline::COLD_SOLVES)),
                ("warm_solves", Json::UInt(baseline::WARM_SOLVES)),
                ("augment_steps", Json::UInt(baseline::AUGMENT_STEPS)),
                ("combos_evaluated", Json::UInt(baseline::COMBOS_EVALUATED)),
                ("combos_pruned", Json::UInt(baseline::COMBOS_PRUNED)),
                ("obf_aware_binds", Json::UInt(baseline::OBF_AWARE_BINDS)),
                ("warm_start_hit_rate", Json::Float(baseline::WARM_HIT_RATE)),
            ]),
        ),
        (
            "current",
            Json::obj([
                ("wall_seconds", Json::Float(wall_seconds)),
                ("cold_solves", Json::UInt(cold)),
                ("warm_solves", Json::UInt(warm)),
                ("rows_total", Json::UInt(rows_total)),
                ("rows_reaugmented", Json::UInt(rows_reaugmented)),
                ("augment_steps", Json::UInt(get("matching.augment_steps"))),
                ("combos_evaluated", Json::UInt(evaluated)),
                ("combos_pruned", Json::UInt(pruned)),
                ("obf_aware_binds", Json::UInt(get("bind.obf_aware.calls"))),
                ("warm_start_hit_rate", Json::Float(warm_hit_rate)),
            ]),
        ),
        (
            "speedup",
            Json::obj([
                (
                    "wall_speedup",
                    Json::Float(baseline::WALL_SECONDS / wall_seconds),
                ),
                (
                    "cold_solve_reduction",
                    Json::Float(1.0 - cold as f64 / baseline::COLD_SOLVES as f64),
                ),
                (
                    "augment_step_reduction",
                    Json::Float(
                        1.0 - get("matching.augment_steps") as f64 / baseline::AUGMENT_STEPS as f64,
                    ),
                ),
            ]),
        ),
    ]);
    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/BENCH_matching.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&json_path, doc.render() + "\n") {
        eprintln!("matching_bench: cannot write {}: {e}", json_path.display());
        std::process::exit(2);
    }
    eprintln!(
        "[matching_bench] metrics written to {}",
        json_path.display()
    );
    if let Err(e) = obs.finish() {
        eprintln!("matching_bench: cannot write trace: {e}");
        std::process::exit(2);
    }
}
