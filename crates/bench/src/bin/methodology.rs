//! **Sec. V-C walk-through**: the binding-time logic-locking design
//! methodology. Sweeps application-error targets on two kernels, reporting
//! the locked-input count the co-design tuner settles on, the analytic SAT
//! resilience (Eqn. 1), and whether an exponential-SAT-runtime scheme must
//! be layered on top — including the gate-cost comparison that makes
//! permutation-network locking unattractive standalone (the paper's
//! Full-Lock-on-b14 anecdote).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin methodology [frames]`

use lockbind_bench::report::render_table;
use lockbind_bench::PreparedKernel;
use lockbind_core::{design_lock, realize_locked_modules, DesignGoals};
use lockbind_hls::{FuClass, FuId};
use lockbind_locking::{lock_compound, lock_critical_minterms, lock_permutation};
use lockbind_mediabench::Kernel;
use lockbind_netlist::builders::adder_fu;

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);

    println!("Sec. V-C — binding-time locking design methodology");
    println!();

    let mut rows = Vec::new();
    for kernel in [Kernel::Dct, Kernel::Fir] {
        let p = PreparedKernel::new(kernel, frames, 2021);
        let candidates = p.candidates(FuClass::Adder, 10);
        let fus = vec![FuId::new(FuClass::Adder, 0), FuId::new(FuClass::Adder, 1)];
        for target_fraction in [0.02f64, 0.05, 0.10, 0.20] {
            let target = (frames as f64 * target_fraction).ceil() as u64;
            let goals = DesignGoals {
                min_application_errors: target,
                min_sat_iterations: 1e6,
                max_inputs_per_fu: 5,
            };
            match design_lock(
                &p.dfg,
                &p.schedule,
                &p.alloc,
                &p.profile,
                &fus,
                &candidates,
                &goals,
            ) {
                Ok(out) => {
                    let modules =
                        realize_locked_modules(&out.design.spec, p.dfg.width()).expect("lockable");
                    let gates: usize = modules.iter().map(|(_, m)| m.netlist().gate_count()).sum();
                    rows.push(vec![
                        kernel.name().to_string(),
                        format!("{target} errs"),
                        out.inputs_per_fu.to_string(),
                        format!("{}", out.design.errors),
                        format!("{:.2e}", out.sat_iterations),
                        if out.needs_exponential_scheme {
                            "yes"
                        } else {
                            "no"
                        }
                        .to_string(),
                        gates.to_string(),
                    ]);
                }
                Err(e) => {
                    rows.push(vec![
                        kernel.name().to_string(),
                        format!("{target} errs"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                    ]);
                }
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "error target",
                "inputs/FU",
                "achieved errs",
                "Eqn.1 lambda",
                "needs exp. scheme",
                "locked gates",
            ],
            &rows
        )
    );

    // The overhead argument: critical-minterm vs permutation locking at
    // comparable key length on an 8-bit adder.
    println!();
    println!("Exponential-runtime schemes cost too much to stand alone (Sec. V-C):");
    let adder = adder_fu(8);
    let cml = lock_critical_minterms(&adder, &[0x1234, 0x00FF]).expect("lockable");
    let perm = lock_permutation(&adder, 3).expect("lockable");
    println!(
        "  adder8 baseline gates: {:5}  (reference)",
        adder.gate_count()
    );
    println!(
        "  critical-minterm lock: {:5} gates ({:+.0}%), {} key bits",
        cml.netlist().gate_count(),
        cml.area_overhead() * 100.0,
        cml.key_bits()
    );
    println!(
        "  permutation lock     : {:5} gates ({:+.0}%), {} key bits",
        perm.netlist().gate_count(),
        perm.area_overhead() * 100.0,
        perm.key_bits()
    );
    let comp = lock_compound(&adder, &[0x1234, 0x00FF], 3).expect("lockable");
    println!(
        "  compound (CML+perm)  : {:5} gates ({:+.0}%), {} key bits",
        comp.netlist().gate_count(),
        comp.area_overhead() * 100.0,
        comp.key_bits()
    );
    println!();
    println!("=> use low-overhead critical-minterm locking for as much resilience as");
    println!("   possible, and add permutation stages (the compound scheme) only when");
    println!("   Eqn. 1 falls short of the resilience target.");
}
