//! Regenerates **Fig. 5**: impact of the locking configuration (number of
//! locked FUs, number of locked inputs) on the error increase of each
//! security-aware binding algorithm, averaged over all other parameters and
//! normalized to area/power-aware binding with the identical configuration.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin fig5 --
//! [FRAMES] [SEED] [--threads N] [--json PATH] [--fail-fast]`

use lockbind_bench::errors_experiment::geomean;
use lockbind_bench::report::{fmt_ratio, render_table};
use lockbind_bench::{collect_error_records, error_grid, ExperimentParams, SecurityAlgo};
use lockbind_engine::{Engine, EngineArgs};
use lockbind_mediabench::Kernel;

fn main() {
    let args = EngineArgs::parse("fig5");
    let params = ExperimentParams::default();
    let obs = args.obs_session();

    println!("Fig. 5 — error increase vs locking configuration (normalized to the");
    println!("same configuration under area/power-aware binding)");
    println!();

    let engine = Engine::new(args.engine_config());
    let cells = error_grid(&Kernel::ALL, args.frames, args.seed, &params);
    let report = engine.run(&cells);
    let (records, failures) = collect_error_records(&report.results);

    let series = [
        ("Obf.-Aware vs Area-Aware", SecurityAlgo::ObfAware, true),
        ("Obf.-Aware vs Power-Aware", SecurityAlgo::ObfAware, false),
        (
            "P-Time Bind-Obf. Co-Design vs Area-Aware",
            SecurityAlgo::CoDesignHeuristic,
            true,
        ),
        (
            "P-Time Bind-Obf. Co-Design vs Power-Aware",
            SecurityAlgo::CoDesignHeuristic,
            false,
        ),
    ];

    type ConfigFilter = Box<dyn Fn(usize, usize) -> bool>;
    let buckets: [(&str, ConfigFilter); 7] = [
        ("1 FU", Box::new(|f, _| f == 1)),
        ("2 FUs", Box::new(|f, _| f == 2)),
        ("3 FUs", Box::new(|f, _| f == 3)),
        ("1 Lock Inp.", Box::new(|_, i| i == 1)),
        ("2 Lock Inp.", Box::new(|_, i| i == 2)),
        ("3 Lock Inp.", Box::new(|_, i| i == 3)),
        ("Avg.", Box::new(|_, _| true)),
    ];

    let headers: Vec<&str> = std::iter::once("series")
        .chain(buckets.iter().map(|(n, _)| *n))
        .collect();
    let mut rows = Vec::new();
    for (label, algo, vs_area) in series {
        let mut row = vec![label.to_string()];
        for (_, pred) in &buckets {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| r.algo == algo && pred(r.locked_fus, r.locked_inputs))
                .map(|r| if vs_area { r.vs_area } else { r.vs_power })
                .collect();
            row.push(if vals.is_empty() {
                "-".into()
            } else {
                fmt_ratio(geomean(vals))
            });
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));

    eprintln!("[fig5] {}", report.metrics.summary());
    if let Some(path) = &args.json {
        if let Err(e) = report.metrics.write_json(path) {
            eprintln!("fig5: cannot write metrics to {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("[fig5] metrics written to {}", path.display());
    }
    if let Err(e) = obs.finish() {
        eprintln!("fig5: cannot write trace: {e}");
        std::process::exit(2);
    }
    if !failures.is_empty() {
        eprintln!("[fig5] {} cells FAILED:", failures.len());
        for (cell, message) in &failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }
}
