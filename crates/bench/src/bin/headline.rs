//! Regenerates the paper's **headline scalars** (abstract / Sec. VI-A):
//!
//! * obfuscation-aware binding: 22x vs area-aware, 29x vs power-aware
//!   (26x combined),
//! * binding-obfuscation co-design: 82x vs area, 115x vs power (99x),
//! * the P-time heuristic degrades the optimal co-design solution by <0.5%.
//!
//! Runs on the execution engine and always writes its run metrics to
//! `results/BENCH_headline.json` (override the path with `--json`).
//!
//! This is the canonical observability entry point: its combined grid also
//! runs one end-to-end locked-simulation cell per kernel and one SAT-attack
//! cell per scheme, so `headline --profile --trace trace.json` covers every
//! pipeline stage (scheduling, binding, matching, locked-sim, sat-attack).
//!
//! Usage: `cargo run -p lockbind-bench --release --bin headline --
//! [FRAMES] [SEED] [--threads N] [--json PATH] [--fail-fast]
//! [--trace PATH] [--profile]`

use std::path::PathBuf;

use lockbind_bench::errors_experiment::geomean;
use lockbind_bench::{collect_headline_records, headline_grid, ExperimentParams, SecurityAlgo};
use lockbind_engine::{Engine, EngineArgs};
use lockbind_mediabench::Kernel;

fn main() {
    let args = EngineArgs::parse("headline");
    let params = ExperimentParams::default();
    let obs = args.obs_session();

    let engine = Engine::new(args.engine_config());
    let cells = headline_grid(&Kernel::ALL, args.frames, args.seed, &params);
    let report = engine.run(&cells);
    let (records, impacts, sats, failures) = collect_headline_records(&report.results);

    let collect = |algo: SecurityAlgo, vs_area: bool| -> Vec<f64> {
        records
            .iter()
            .filter(|r| r.algo == algo)
            .map(|r| if vs_area { r.vs_area } else { r.vs_power })
            .collect()
    };
    let amean = |vals: &[f64]| vals.iter().sum::<f64>() / vals.len() as f64;

    let obf_area = collect(SecurityAlgo::ObfAware, true);
    let obf_power = collect(SecurityAlgo::ObfAware, false);
    let cd_area = collect(SecurityAlgo::CoDesignHeuristic, true);
    let cd_power = collect(SecurityAlgo::CoDesignHeuristic, false);

    println!("Headline numbers over all kernels/configs/combination assignments;");
    println!("arithmetic mean of per-config mean ratios (the paper's convention),");
    println!("geometric mean in (parens); paper reference values in [brackets]");
    println!();
    println!("obfuscation-aware binding:");
    println!(
        "  vs area-aware : {:7.1}x ({:.1}x)   [22x]",
        amean(&obf_area),
        geomean(obf_area.iter().copied())
    );
    println!(
        "  vs power-aware: {:7.1}x ({:.1}x)   [29x]",
        amean(&obf_power),
        geomean(obf_power.iter().copied())
    );
    println!(
        "  combined      : {:7.1}x   [26x]",
        (amean(&obf_area) + amean(&obf_power)) / 2.0
    );
    println!();
    println!("binding-obfuscation co-design (P-time heuristic):");
    println!(
        "  vs area-aware : {:7.1}x ({:.1}x)   [82x]",
        amean(&cd_area),
        geomean(cd_area.iter().copied())
    );
    println!(
        "  vs power-aware: {:7.1}x ({:.1}x)   [115x]",
        amean(&cd_power),
        geomean(cd_power.iter().copied())
    );
    println!(
        "  combined      : {:7.1}x   [99x]",
        (amean(&cd_area) + amean(&cd_power)) / 2.0
    );
    println!();

    // Heuristic vs optimal degradation (on configs where optimal ran).
    let mut degradations = Vec::new();
    for opt in records
        .iter()
        .filter(|r| r.algo == SecurityAlgo::CoDesignOptimal)
    {
        if let Some(heur) = records.iter().find(|h| {
            h.algo == SecurityAlgo::CoDesignHeuristic
                && h.kernel == opt.kernel
                && h.class == opt.class
                && h.locked_fus == opt.locked_fus
                && h.locked_inputs == opt.locked_inputs
        }) {
            if opt.mean_errors > 0.0 {
                degradations.push(1.0 - heur.mean_errors / opt.mean_errors);
            }
        }
    }
    if degradations.is_empty() {
        println!("heuristic vs optimal: no tractable optimal configs were run");
    } else {
        let mean = degradations.iter().sum::<f64>() / degradations.len() as f64;
        let max = degradations.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "heuristic vs optimal co-design: mean degradation {:.3}% (max {:.3}%) over {} configs   [<0.5%]",
            mean * 100.0,
            max * 100.0,
            degradations.len()
        );
    }

    println!();
    println!("end-to-end pipeline checks:");
    let corrupted = impacts.iter().filter(|i| i.frames_corrupted > 0).count();
    println!(
        "  locked-sim : {}/{} kernels corrupted under a wrong key",
        corrupted,
        impacts.len()
    );
    for s in &sats {
        println!(
            "  sat-attack : {:<17} {} key bits, {} DIPs, {} conflicts, {} props, {} GCs, key {}",
            s.scheme,
            s.key_bits,
            s.iterations,
            s.conflicts,
            s.propagations,
            s.gc_runs,
            if s.success { "found" } else { "NOT found" }
        );
    }

    let json_path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/BENCH_headline.json"));
    if let Err(e) = report.metrics.write_json(&json_path) {
        eprintln!(
            "headline: cannot write metrics to {}: {e}",
            json_path.display()
        );
        std::process::exit(2);
    }
    eprintln!("[headline] {}", report.metrics.summary());
    eprintln!("[headline] metrics written to {}", json_path.display());
    if let Err(e) = obs.finish() {
        eprintln!("headline: cannot write trace: {e}");
        std::process::exit(2);
    }
    if !failures.is_empty() {
        eprintln!("[headline] {} cells FAILED:", failures.len());
        for (cell, message) in &failures {
            eprintln!("  {cell}: {message}");
        }
        std::process::exit(1);
    }
}
