//! Regenerates the paper's **headline scalars** (abstract / Sec. VI-A):
//!
//! * obfuscation-aware binding: 22x vs area-aware, 29x vs power-aware
//!   (26x combined),
//! * binding-obfuscation co-design: 82x vs area, 115x vs power (99x),
//! * the P-time heuristic degrades the optimal co-design solution by <0.5%.
//!
//! Usage: `cargo run -p lockbind-bench --release --bin headline [frames] [seed]`

use lockbind_bench::errors_experiment::geomean;
use lockbind_bench::{run_error_experiment, ExperimentParams, PreparedKernel, SecurityAlgo};

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2021);
    let params = ExperimentParams::default();

    let suite = PreparedKernel::suite(frames, seed);
    let mut records = Vec::new();
    for p in &suite {
        records.extend(run_error_experiment(p, &params).expect("feasible"));
    }

    let collect = |algo: SecurityAlgo, vs_area: bool| -> Vec<f64> {
        records
            .iter()
            .filter(|r| r.algo == algo)
            .map(|r| if vs_area { r.vs_area } else { r.vs_power })
            .collect()
    };
    let amean = |vals: &[f64]| vals.iter().sum::<f64>() / vals.len() as f64;

    let obf_area = collect(SecurityAlgo::ObfAware, true);
    let obf_power = collect(SecurityAlgo::ObfAware, false);
    let cd_area = collect(SecurityAlgo::CoDesignHeuristic, true);
    let cd_power = collect(SecurityAlgo::CoDesignHeuristic, false);

    println!("Headline numbers over all kernels/configs/combination assignments;");
    println!("arithmetic mean of per-config mean ratios (the paper's convention),");
    println!("geometric mean in (parens); paper reference values in [brackets]");
    println!();
    println!("obfuscation-aware binding:");
    println!(
        "  vs area-aware : {:7.1}x ({:.1}x)   [22x]",
        amean(&obf_area),
        geomean(obf_area.iter().copied())
    );
    println!(
        "  vs power-aware: {:7.1}x ({:.1}x)   [29x]",
        amean(&obf_power),
        geomean(obf_power.iter().copied())
    );
    println!(
        "  combined      : {:7.1}x   [26x]",
        (amean(&obf_area) + amean(&obf_power)) / 2.0
    );
    println!();
    println!("binding-obfuscation co-design (P-time heuristic):");
    println!(
        "  vs area-aware : {:7.1}x ({:.1}x)   [82x]",
        amean(&cd_area),
        geomean(cd_area.iter().copied())
    );
    println!(
        "  vs power-aware: {:7.1}x ({:.1}x)   [115x]",
        amean(&cd_power),
        geomean(cd_power.iter().copied())
    );
    println!(
        "  combined      : {:7.1}x   [99x]",
        (amean(&cd_area) + amean(&cd_power)) / 2.0
    );
    println!();

    // Heuristic vs optimal degradation (on configs where optimal ran).
    let mut degradations = Vec::new();
    for opt in records
        .iter()
        .filter(|r| r.algo == SecurityAlgo::CoDesignOptimal)
    {
        if let Some(heur) = records.iter().find(|h| {
            h.algo == SecurityAlgo::CoDesignHeuristic
                && h.kernel == opt.kernel
                && h.class == opt.class
                && h.locked_fus == opt.locked_fus
                && h.locked_inputs == opt.locked_inputs
        }) {
            if opt.mean_errors > 0.0 {
                degradations.push(1.0 - heur.mean_errors / opt.mean_errors);
            }
        }
    }
    if degradations.is_empty() {
        println!("heuristic vs optimal: no tractable optimal configs were run");
    } else {
        let mean = degradations.iter().sum::<f64>() / degradations.len() as f64;
        let max = degradations.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "heuristic vs optimal co-design: mean degradation {:.3}% (max {:.3}%) over {} configs   [<0.5%]",
            mean * 100.0,
            max * 100.0,
            degradations.len()
        );
    }
}
