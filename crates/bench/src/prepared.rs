//! One-time preparation of a kernel: schedule, allocation, profiles,
//! candidate locked inputs.

use lockbind_hls::{
    schedule_list, Allocation, Dfg, FuClass, Minterm, OccurrenceProfile, Schedule, SwitchingProfile,
};
use lockbind_mediabench::{Benchmark, Kernel};

/// A kernel with everything the binding experiments need, built once.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    /// Benchmark name (the DFG's name for custom benchmarks).
    pub name: String,
    /// The kernel DFG.
    pub dfg: Dfg,
    /// Resource-constrained schedule (up to 3 FUs per class, as in the
    /// paper).
    pub schedule: Schedule,
    /// The FU allocation used for every experiment.
    pub alloc: Allocation,
    /// The K matrix over the generated typical workload.
    pub profile: OccurrenceProfile,
    /// Pairwise switching profile over the same workload.
    pub switching: SwitchingProfile,
}

impl PreparedKernel {
    /// Prepares a suite kernel with `frames` workload frames from `seed`.
    pub fn new(kernel: Kernel, frames: usize, seed: u64) -> Self {
        Self::from_benchmark(kernel.benchmark(frames, seed))
    }

    /// Prepares an arbitrary benchmark (e.g. the tunable synthetic kernel
    /// or a user-supplied design).
    ///
    /// # Panics
    /// Panics if the DFG cannot be scheduled onto 3 FUs per used class or
    /// the trace arity mismatches the DFG.
    pub fn from_benchmark(bench: Benchmark) -> Self {
        let (_, muls) = bench.dfg.op_mix();
        let alloc = Allocation::new(3, if muls > 0 { 3 } else { 0 });
        let schedule = schedule_list(&bench.dfg, &alloc).expect("kernels fit 3+3 FUs");
        let profile =
            OccurrenceProfile::from_trace(&bench.dfg, &bench.trace).expect("arity matches");
        let switching =
            SwitchingProfile::from_trace(&bench.dfg, &bench.trace).expect("arity matches");
        PreparedKernel {
            name: bench.dfg.name().to_string(),
            dfg: bench.dfg,
            schedule,
            alloc,
            profile,
            switching,
        }
    }

    /// Prepares every kernel of the suite.
    pub fn suite(frames: usize, seed: u64) -> Vec<PreparedKernel> {
        Kernel::ALL
            .into_iter()
            .map(|k| PreparedKernel::new(k, frames, seed))
            .collect()
    }

    /// The paper's candidate locked-input list: the `k` most common input
    /// minterms among this kernel's operations of `class`.
    pub fn candidates(&self, class: FuClass, k: usize) -> Vec<Minterm> {
        let ops = self.dfg.ops_of_class(class);
        self.profile.top_candidates_among(&ops, k)
    }

    /// FU classes with at least one operation (ecb_enc4 has no multiplies).
    pub fn classes(&self) -> Vec<FuClass> {
        FuClass::ALL
            .into_iter()
            .filter(|&c| !self.dfg.ops_of_class(c).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preparation_builds_candidates() {
        let p = PreparedKernel::new(Kernel::Fir, 100, 3);
        let c = p.candidates(FuClass::Multiplier, 10);
        assert!(!c.is_empty());
        assert!(c.len() <= 10);
        assert_eq!(p.classes().len(), 2);
    }

    #[test]
    fn suite_prepares_all_kernels() {
        let suite = PreparedKernel::suite(30, 1);
        assert_eq!(suite.len(), 11);
    }
}
