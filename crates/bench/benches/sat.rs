//! Criterion bench: CDCL solver and SAT-attack cost, including the
//! per-iteration-hardness contrast between locking families (Sec. V-C).

use criterion::{criterion_group, criterion_main, Criterion};
use lockbind_attacks::{sat_attack, AttackConfig};
use lockbind_locking::{lock_critical_minterms, lock_permutation, lock_rll};
use lockbind_netlist::builders::adder_fu;
use lockbind_sat::{SolveResult, Solver};

fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let mut var = vec![vec![0i32; holes]; pigeons];
    for row in var.iter_mut() {
        for v in row.iter_mut() {
            *v = s.new_var();
        }
    }
    for row in &var {
        s.add_clause(row);
    }
    for p1 in 0..pigeons {
        for p2 in (p1 + 1)..pigeons {
            for (a, b) in var[p1].iter().zip(&var[p2]) {
                s.add_clause(&[-a, -b]);
            }
        }
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl");
    group.sample_size(10);
    group.bench_function("pigeonhole_7_6", |b| {
        b.iter_with_setup(
            || pigeonhole(7, 6),
            |mut s| assert_eq!(s.solve(), SolveResult::Unsat),
        )
    });
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_attack");
    group.sample_size(10);
    let adder3 = adder_fu(3);
    let rll = lock_rll(&adder3, 6, 42).expect("lockable");
    group.bench_function("rll_adder3", |b| {
        b.iter(|| {
            let out = sat_attack(&rll, &AttackConfig::default());
            assert!(out.success);
        })
    });
    let cml = lock_critical_minterms(&adder3, &[0x15]).expect("lockable");
    group.bench_function("critical_minterm_adder3", |b| {
        b.iter(|| {
            let out = sat_attack(&cml, &AttackConfig::default());
            assert!(out.success);
        })
    });
    let perm = lock_permutation(&adder3, 2).expect("lockable");
    group.bench_function("permutation_adder3", |b| {
        b.iter(|| {
            let out = sat_attack(&perm, &AttackConfig::default());
            assert!(out.success);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver, bench_attacks);
criterion_main!(benches);
