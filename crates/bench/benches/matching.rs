//! Criterion bench: Hungarian max-weight matching scaling (supports the
//! paper's O(s·N·R·log R) binding-runtime claim, Sec. IV-C).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lockbind_matching::{max_weight_matching, WeightMatrix};

fn random_matrix(n: usize, m: usize, seed: u64) -> WeightMatrix {
    let mut s = seed;
    WeightMatrix::from_fn(n, m, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Some(((s >> 33) % 1000) as i64)
    })
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [3usize, 8, 16, 64, 128] {
        let w = random_matrix(n, n, 42);
        group.bench_with_input(BenchmarkId::new("square", n), &w, |b, w| {
            b.iter(|| max_weight_matching(black_box(w)).expect("feasible"))
        });
    }
    // The binding-shaped case: few rows (ops in a cycle), few cols (FUs).
    let w = random_matrix(3, 3, 7);
    group.bench_function("cycle_3ops_3fus", |b| {
        b.iter(|| max_weight_matching(black_box(&w)).expect("feasible"))
    });
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
