//! Criterion bench: end-to-end cost of one Fig.-4 experiment cell per
//! kernel family (tracks the cost of regenerating the paper's figures).

use criterion::{criterion_group, criterion_main, Criterion};
use lockbind_bench::{run_error_experiment, ExperimentParams, PreparedKernel};
use lockbind_mediabench::Kernel;

fn bench_fig4_cell(c: &mut Criterion) {
    let params = ExperimentParams {
        num_candidates: 6,
        max_locked_fus: 2,
        max_locked_inputs: 2,
        max_assignments: 200,
        optimal_budget: 0,
        seed: 1,
    };
    let mut group = c.benchmark_group("fig4_cell");
    group.sample_size(10);
    for kernel in [Kernel::Fir, Kernel::Dct, Kernel::Motion3] {
        let p = PreparedKernel::new(kernel, 100, 2);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| run_error_experiment(&p, &params).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_kernel");
    group.sample_size(10);
    group.bench_function("dct_300_frames", |b| {
        b.iter(|| PreparedKernel::new(Kernel::Dct, 300, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_cell, bench_preparation);
criterion_main!(benches);
