//! Criterion bench: binding-algorithm runtime on suite kernels and on
//! synthetic DFGs of growing size (the P-time complexity claims of
//! Sec. IV-C and Sec. V-B).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lockbind_bench::PreparedKernel;
use lockbind_core::{
    bind_area_aware, bind_obfuscation_aware, bind_power_aware, codesign_heuristic, LockingSpec,
};
use lockbind_hls::{
    schedule_list, Allocation, Dfg, FuClass, FuId, OccurrenceProfile, OpKind, Trace,
};
use lockbind_mediabench::Kernel;

/// Synthetic layered DFG: `layers` cycles of `width_ops` independent adds.
fn synthetic(layers: usize, width_ops: usize) -> (Dfg, Trace) {
    let mut d = Dfg::new(8);
    let inputs: Vec<_> = (0..width_ops + 1)
        .map(|i| d.input(format!("x{i}")))
        .collect();
    let mut prev: Vec<_> = (0..width_ops)
        .map(|i| d.op(OpKind::Add, inputs[i], inputs[i + 1]))
        .collect();
    for _ in 1..layers {
        prev = (0..width_ops)
            .map(|i| {
                d.op(
                    OpKind::Add,
                    prev[i].into(),
                    prev[(i + 1) % width_ops].into(),
                )
            })
            .collect();
    }
    for op in &prev {
        d.mark_output(*op);
    }
    let trace = Trace::from_frames(
        (0..64u64)
            .map(|f| {
                (0..width_ops as u64 + 1)
                    .map(|i| (f * 7 + i) % 256)
                    .collect()
            })
            .collect(),
    );
    (d, trace)
}

fn bench_obf_aware_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("obf_aware_scaling");
    for layers in [8usize, 32, 128] {
        let (d, trace) = synthetic(layers, 3);
        let alloc = Allocation::new(3, 0);
        let sched = schedule_list(&d, &alloc).expect("feasible");
        let profile = OccurrenceProfile::from_trace(&d, &trace).expect("profiled");
        let ops = d.ops_of_class(FuClass::Adder);
        let cands = profile.top_candidates_among(&ops, 3);
        let spec = LockingSpec::new(&alloc, vec![(FuId::new(FuClass::Adder, 0), cands.clone())])
            .expect("valid");
        group.bench_with_input(BenchmarkId::new("layers", layers), &layers, |b, _| {
            b.iter(|| {
                bind_obfuscation_aware(black_box(&d), black_box(&sched), &alloc, &profile, &spec)
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_kernel_algorithms(c: &mut Criterion) {
    let p = PreparedKernel::new(Kernel::Dct, 128, 3);
    let candidates = p.candidates(FuClass::Adder, 10);
    let spec = LockingSpec::new(
        &p.alloc,
        vec![(FuId::new(FuClass::Adder, 0), candidates[..2].to_vec())],
    )
    .expect("valid");
    let fus = [FuId::new(FuClass::Adder, 0), FuId::new(FuClass::Adder, 1)];

    let mut group = c.benchmark_group("dct_binding");
    group.bench_function("obf_aware", |b| {
        b.iter(|| {
            bind_obfuscation_aware(&p.dfg, &p.schedule, &p.alloc, &p.profile, &spec)
                .expect("feasible")
        })
    });
    group.bench_function("area_aware", |b| {
        b.iter(|| bind_area_aware(&p.dfg, &p.schedule, &p.alloc).expect("feasible"))
    });
    group.bench_function("power_aware", |b| {
        b.iter(|| bind_power_aware(&p.dfg, &p.schedule, &p.alloc, &p.switching).expect("feasible"))
    });
    group.bench_function("codesign_heuristic_2fu_2inp", |b| {
        b.iter(|| {
            codesign_heuristic(
                &p.dfg,
                &p.schedule,
                &p.alloc,
                &p.profile,
                &fus,
                2,
                &candidates,
            )
            .expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obf_aware_scaling, bench_kernel_algorithms);
criterion_main!(benches);
