//! Hungarian algorithm (shortest augmenting paths with potentials).
//!
//! The implementation follows the classic `O(n^2 m)` potential-based
//! formulation: rows are introduced one at a time and an augmenting path of
//! minimum reduced cost is grown Dijkstra-style over the columns. Forbidden
//! edges are modelled as a large-but-finite cost so that infeasibility can be
//! detected exactly afterwards.

use lockbind_obs as obs;

use crate::certificate::{CertifiedMatching, DualCertificate};
use crate::{Matching, MatchingError, WeightMatrix};

/// Finds a complete matching of rows into columns with **minimum** total
/// weight.
///
/// # Errors
///
/// * [`MatchingError::MoreRowsThanCols`] if `rows > cols`,
/// * [`MatchingError::NoColumns`] if the matrix has rows but no columns,
/// * [`MatchingError::Infeasible`] if forbidden edges rule out every complete
///   matching.
///
/// # Example
/// ```
/// use lockbind_matching::{WeightMatrix, min_cost_matching};
/// # fn main() -> Result<(), lockbind_matching::MatchingError> {
/// let w = WeightMatrix::from_fn(2, 2, |r, c| Some(if r == c { 1 } else { 10 }));
/// let m = min_cost_matching(&w)?;
/// assert_eq!(m.total, 2);
/// # Ok(())
/// # }
/// ```
pub fn min_cost_matching(weights: &WeightMatrix) -> Result<Matching, MatchingError> {
    solve(weights, false).map(|(m, _)| m)
}

/// Finds a complete matching of rows into columns with **maximum** total
/// weight (the max-weight bipartite matching of Sec. IV-B of the paper).
///
/// # Errors
///
/// Same conditions as [`min_cost_matching`].
pub fn max_weight_matching(weights: &WeightMatrix) -> Result<Matching, MatchingError> {
    solve(weights, true).map(|(m, _)| m)
}

/// Like [`max_weight_matching`], but also returns the solver's final dual
/// potentials as a [`DualCertificate`] proving the assignment optimal
/// (verifiable offline with
/// [`verify_dual_certificate`](crate::verify_dual_certificate) — dual
/// feasibility plus a zero duality gap, no re-solve required).
///
/// # Errors
///
/// Same conditions as [`min_cost_matching`].
pub fn max_weight_matching_certified(
    weights: &WeightMatrix,
) -> Result<CertifiedMatching, MatchingError> {
    certified(weights, true)
}

/// Like [`min_cost_matching`], but also returns a [`DualCertificate`].
///
/// # Errors
///
/// Same conditions as [`min_cost_matching`].
pub fn min_cost_matching_certified(
    weights: &WeightMatrix,
) -> Result<CertifiedMatching, MatchingError> {
    certified(weights, false)
}

fn certified(weights: &WeightMatrix, maximize: bool) -> Result<CertifiedMatching, MatchingError> {
    obs::counter!("matching.certificates").inc();
    let (matching, certificate) = solve(weights, maximize)?;
    Ok(CertifiedMatching {
        matching,
        certificate,
    })
}

/// The finite cost the solver substitutes for forbidden edges: strictly
/// dominates any matching made of allowed edges, scaled to the instance so
/// potentials never overflow. A pure function of the matrix, so certificate
/// verification reproduces it exactly.
pub(crate) fn dominating_forbidden_cost(weights: &WeightMatrix) -> i64 {
    let n = weights.rows();
    let m = weights.cols();
    let max_abs = (0..n)
        .flat_map(|r| (0..m).filter_map(move |c| weights.get(r, c)))
        .map(i64::abs)
        .max()
        .unwrap_or(0);
    // Cannot overflow: max_abs <= 2^42 and n < 2^20 in any sane instance;
    // saturating keeps pathological inputs well-defined (still dominating,
    // still below INF).
    (max_abs + 1).saturating_mul(2 * n as i64 + 2)
}

fn solve(
    weights: &WeightMatrix,
    maximize: bool,
) -> Result<(Matching, DualCertificate), MatchingError> {
    // This is the hottest function in the workspace (millions of calls per
    // sweep): counters are always-on atomics, the timer samples 1/16 calls.
    obs::counter!("matching.solves").inc();
    let _timer = obs::timer_sampled!("matching.solve", 4);
    let n = weights.rows();
    let m = weights.cols();
    if n == 0 {
        return Ok((
            Matching {
                row_to_col: Vec::new(),
                total: 0,
            },
            DualCertificate {
                u: Vec::new(),
                v: vec![0; m],
                maximize,
            },
        ));
    }
    if m == 0 {
        return Err(MatchingError::NoColumns);
    }
    if n > m {
        return Err(MatchingError::MoreRowsThanCols { rows: n, cols: m });
    }

    // Forbidden edges are modelled as a finite cost strictly dominating any
    // matching made of allowed edges: any single forbidden edge costs more
    // than n of the largest allowed edges.
    let forbidden_cost = dominating_forbidden_cost(weights);

    // Reduced cost access: minimization with forbidden edges as huge cost.
    let cost = |r: usize, c: usize| -> i64 {
        match weights.get(r, c) {
            Some(w) => {
                if maximize {
                    -w
                } else {
                    w
                }
            }
            None => forbidden_cost,
        }
    };

    const INF: i64 = i64::MAX / 2;
    // 1-indexed potentials/match arrays per the classic formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; m + 1];
    // p[j] = row (1-indexed) matched to column j; p[0] is the row being placed.
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    let mut augment_steps = 0u64;
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            augment_steps += 1;
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta < INF, "augmenting path search stalled");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    obs::counter!("matching.augment_paths").add(n as u64);
    obs::counter!("matching.augment_steps").add(augment_steps);

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));

    let mut total = 0i64;
    for (r, &c) in row_to_col.iter().enumerate() {
        match weights.get(r, c) {
            Some(w) => total += w,
            None => return Err(MatchingError::Infeasible),
        }
    }
    // The final potentials are the LP dual certificate: `u[1..=n]` and
    // `v[1..=m]` are dual feasible with zero gap against the matching
    // (`u[0]`/`v[0]` belong to the dummy 0-index of the classic
    // formulation and are dropped).
    let certificate = DualCertificate {
        u: u[1..=n].to_vec(),
        v: v[1..=m].to_vec(),
        maximize,
    };
    Ok((Matching { row_to_col, total }, certificate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;

    #[test]
    fn empty_matrix_matches_nothing() {
        let w = WeightMatrix::zero(0, 5);
        let m = max_weight_matching(&w).expect("empty matching");
        assert!(m.row_to_col.is_empty());
        assert_eq!(m.total, 0);
    }

    #[test]
    fn single_cell() {
        let mut w = WeightMatrix::zero(1, 1);
        w.set(0, 0, 42);
        assert_eq!(max_weight_matching(&w).map(|m| m.total), Ok(42));
        assert_eq!(min_cost_matching(&w).map(|m| m.total), Ok(42));
    }

    #[test]
    fn rows_exceed_cols_is_error() {
        let w = WeightMatrix::zero(3, 2);
        assert_eq!(
            max_weight_matching(&w),
            Err(MatchingError::MoreRowsThanCols { rows: 3, cols: 2 })
        );
    }

    #[test]
    fn no_columns_is_error() {
        let w = WeightMatrix::zero(2, 0);
        assert_eq!(max_weight_matching(&w), Err(MatchingError::NoColumns));
    }

    #[test]
    fn paper_fig2_example() {
        // Ops {OPA, OPB}, FUs {FU1(x), FU2(y), FU3(unlocked)}.
        // K: x@OPA=6, x@OPB=4, y@OPA=9, y@OPB=3.
        let mut w = WeightMatrix::zero(2, 3);
        w.set(0, 0, 6);
        w.set(0, 1, 9);
        w.set(1, 0, 4);
        w.set(1, 1, 3);
        let m = max_weight_matching(&w).expect("feasible");
        assert_eq!(m.total, 13);
        assert_eq!(m.row_to_col, vec![1, 0]);
    }

    #[test]
    fn rectangular_prefers_unused_extra_columns() {
        // 2 rows, 4 cols; best columns are 2 and 3.
        let w = WeightMatrix::from_fn(2, 4, |r, c| Some((r as i64 + 1) * c as i64));
        let m = max_weight_matching(&w).expect("feasible");
        // row1 (weight factor 2) should take col 3 (value 6), row0 col 2 (2).
        assert_eq!(m.total, 8);
        assert_eq!(m.row_to_col, vec![2, 3]);
    }

    #[test]
    fn negative_weights_supported() {
        let w = WeightMatrix::from_fn(2, 2, |r, c| Some(-((r + c) as i64)));
        let m = max_weight_matching(&w).expect("feasible");
        // max: pick (0,0)=0 and (1,1)=-2 vs (0,1)=-1,(1,0)=-1 -> -2 both ways.
        assert_eq!(m.total, -2);
    }

    #[test]
    fn forbidden_edges_are_avoided() {
        let mut w = WeightMatrix::from_fn(2, 2, |_, _| Some(10));
        w.forbid(0, 0);
        let m = max_weight_matching(&w).expect("feasible");
        assert_eq!(m.row_to_col, vec![1, 0]);
        assert_eq!(m.total, 20);
    }

    #[test]
    fn infeasible_when_row_fully_forbidden() {
        let w = WeightMatrix::from_fn(2, 2, |r, _| if r == 0 { None } else { Some(1) });
        assert_eq!(max_weight_matching(&w), Err(MatchingError::Infeasible));
    }

    #[test]
    fn infeasible_when_columns_collide() {
        // Both rows may only use column 0.
        let w = WeightMatrix::from_fn(2, 2, |_, c| if c == 0 { Some(1) } else { None });
        assert_eq!(max_weight_matching(&w), Err(MatchingError::Infeasible));
    }

    #[test]
    fn min_and_max_are_consistent_under_negation() {
        let w = WeightMatrix::from_fn(3, 4, |r, c| Some(((r * 7 + c * 13) % 11) as i64));
        let neg = WeightMatrix::from_fn(3, 4, |r, c| w.get(r, c).map(|x| -x));
        let mx = max_weight_matching(&w).expect("feasible").total;
        let mn = min_cost_matching(&neg).expect("feasible").total;
        assert_eq!(mx, -mn);
    }

    #[test]
    fn matches_brute_force_on_fixed_grid() {
        let w = WeightMatrix::from_fn(4, 5, |r, c| Some(((r * 31 + c * 17) % 23) as i64 - 11));
        let h = max_weight_matching(&w).expect("feasible");
        let b = brute_force(&w, true).expect("feasible");
        assert_eq!(h.total, b.total);
    }

    #[test]
    fn assignment_is_a_permutation() {
        let w = WeightMatrix::from_fn(5, 5, |r, c| Some(((r * 3 + c * 5) % 7) as i64));
        let m = max_weight_matching(&w).expect("feasible");
        let mut seen = [false; 5];
        for &c in &m.row_to_col {
            assert!(!seen[c], "column used twice");
            seen[c] = true;
        }
    }
}
