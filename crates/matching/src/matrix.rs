use std::fmt;

/// A dense rectangular weight matrix for the assignment problem.
///
/// Rows conventionally index the items that *must* be matched (operations in a
/// clock cycle), columns index the resources (functional units). Edges may be
/// marked *forbidden*, in which case the solvers will never select them.
///
/// Weights are `i64`; the solvers guard against overflow by requiring
/// `|weight| <= WeightMatrix::MAX_WEIGHT`.
#[derive(Clone, PartialEq, Eq)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
    forbidden: Vec<bool>,
}

impl WeightMatrix {
    /// Largest admissible absolute weight (`2^42`). Chosen so that the
    /// solver's internal potentials — which scale with `weight x rows` plus a
    /// forbidden-edge sentinel of the same magnitude — cannot overflow `i64`
    /// for any matrix with fewer than a million rows.
    pub const MAX_WEIGHT: i64 = 1 << 42;

    /// Creates a `rows x cols` matrix with every weight zero and every edge
    /// allowed.
    ///
    /// # Example
    /// ```
    /// use lockbind_matching::WeightMatrix;
    /// let w = WeightMatrix::zero(2, 3);
    /// assert_eq!((w.rows(), w.cols()), (2, 3));
    /// assert_eq!(w.get(1, 2), Some(0));
    /// ```
    pub fn zero(rows: usize, cols: usize) -> Self {
        WeightMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
            forbidden: vec![false; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell. Returning
    /// `None` forbids the edge.
    ///
    /// # Example
    /// ```
    /// use lockbind_matching::WeightMatrix;
    /// let w = WeightMatrix::from_fn(2, 2, |r, c| Some((r * 10 + c) as i64));
    /// assert_eq!(w.get(1, 0), Some(10));
    /// ```
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize) -> Option<i64>,
    {
        let mut m = WeightMatrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                match f(r, c) {
                    Some(w) => m.set(r, c, w),
                    None => m.forbid(r, c),
                }
            }
        }
        m
    }

    /// Number of rows (items to match).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (resources).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets the weight of edge `(row, col)` and re-allows it if it was
    /// forbidden.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds or `|weight|` exceeds
    /// [`WeightMatrix::MAX_WEIGHT`].
    pub fn set(&mut self, row: usize, col: usize, weight: i64) {
        assert!(
            weight.abs() <= Self::MAX_WEIGHT,
            "weight {weight} exceeds WeightMatrix::MAX_WEIGHT"
        );
        let idx = self.index(row, col);
        self.data[idx] = weight;
        self.forbidden[idx] = false;
    }

    /// Marks edge `(row, col)` as forbidden: no matching may use it.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn forbid(&mut self, row: usize, col: usize) {
        let idx = self.index(row, col);
        self.forbidden[idx] = true;
    }

    /// Returns the weight of edge `(row, col)`, or `None` if the edge is
    /// forbidden.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<i64> {
        let idx = self.index(row, col);
        if self.forbidden[idx] {
            None
        } else {
            Some(self.data[idx])
        }
    }

    /// `true` if edge `(row, col)` may be used by a matching.
    pub fn is_allowed(&self, row: usize, col: usize) -> bool {
        !self.forbidden[self.index(row, col)]
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        row * self.cols + col
    }
}

impl fmt::Debug for WeightMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WeightMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                match self.get(r, c) {
                    Some(w) => write!(f, "{w:>6} ")?,
                    None => write!(f, "     x ")?,
                }
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// The result of a complete matching of all rows into distinct columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Sum of the selected edge weights.
    pub total: i64,
}

impl Matching {
    /// Inverse view: `col_to_row()[c]` is `Some(r)` if row `r` was assigned to
    /// column `c`.
    ///
    /// # Panics
    /// Panics if any assigned column is `>= cols` or if two rows claim the
    /// same column — either means the matching does not belong to a
    /// `cols`-wide instance, and a silent wrap or overwrite here would
    /// corrupt every downstream consumer (the incremental solver's repair
    /// path indexes column state through this view).
    ///
    /// # Example
    /// ```
    /// use lockbind_matching::Matching;
    /// let m = Matching { row_to_col: vec![2, 0], total: 7 };
    /// assert_eq!(m.col_to_row(3), vec![Some(1), None, Some(0)]);
    /// ```
    pub fn col_to_row(&self, cols: usize) -> Vec<Option<usize>> {
        let mut inv = vec![None; cols];
        for (r, &c) in self.row_to_col.iter().enumerate() {
            assert!(
                c < cols,
                "matching assigns row {r} to column {c}, out of range for {cols} columns"
            );
            assert!(
                inv[c].is_none(),
                "matching assigns column {c} to two rows ({} and {r})",
                inv[c].unwrap_or(0)
            );
            inv[c] = Some(r);
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_has_zero_weights() {
        let w = WeightMatrix::zero(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(w.get(r, c), Some(0));
            }
        }
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut w = WeightMatrix::zero(2, 2);
        w.set(0, 1, -17);
        assert_eq!(w.get(0, 1), Some(-17));
        assert_eq!(w.get(1, 0), Some(0));
    }

    #[test]
    fn forbid_hides_weight_until_reset() {
        let mut w = WeightMatrix::zero(1, 1);
        w.set(0, 0, 5);
        w.forbid(0, 0);
        assert_eq!(w.get(0, 0), None);
        assert!(!w.is_allowed(0, 0));
        w.set(0, 0, 6);
        assert_eq!(w.get(0, 0), Some(6));
    }

    #[test]
    fn from_fn_builds_expected_cells() {
        let w = WeightMatrix::from_fn(2, 3, |r, c| if r == c { None } else { Some(1) });
        assert_eq!(w.get(0, 0), None);
        assert_eq!(w.get(1, 1), None);
        assert_eq!(w.get(0, 2), Some(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let w = WeightMatrix::zero(1, 1);
        let _ = w.get(1, 0);
    }

    #[test]
    #[should_panic(expected = "MAX_WEIGHT")]
    fn oversized_weight_panics() {
        let mut w = WeightMatrix::zero(1, 1);
        w.set(0, 0, i64::MAX);
    }

    #[test]
    fn col_to_row_inverts() {
        let m = Matching {
            row_to_col: vec![1, 3, 0],
            total: 0,
        };
        assert_eq!(m.col_to_row(4), vec![Some(2), Some(0), None, Some(1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn col_to_row_rejects_out_of_range_column() {
        let m = Matching {
            row_to_col: vec![1, 3],
            total: 0,
        };
        let _ = m.col_to_row(2);
    }

    #[test]
    #[should_panic(expected = "two rows")]
    fn col_to_row_rejects_duplicate_columns() {
        let m = Matching {
            row_to_col: vec![1, 1],
            total: 0,
        };
        let _ = m.col_to_row(3);
    }

    #[test]
    fn debug_format_marks_forbidden() {
        let mut w = WeightMatrix::zero(1, 2);
        w.forbid(0, 1);
        let s = format!("{w:?}");
        assert!(s.contains('x'));
    }
}
