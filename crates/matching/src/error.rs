use std::error::Error;
use std::fmt;

/// Error returned by the matching solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchingError {
    /// The matrix has more rows (operations) than columns (resources), so no
    /// complete matching of rows exists.
    MoreRowsThanCols {
        /// Number of rows in the offending matrix.
        rows: usize,
        /// Number of columns in the offending matrix.
        cols: usize,
    },
    /// The matrix is empty (zero rows are fine for an empty cycle, but zero
    /// columns with at least one row cannot be matched).
    NoColumns,
    /// Forbidden edges make a complete matching impossible.
    Infeasible,
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::MoreRowsThanCols { rows, cols } => write!(
                f,
                "cannot match {rows} rows into {cols} columns: need cols >= rows"
            ),
            MatchingError::NoColumns => write!(f, "matrix has rows but no columns"),
            MatchingError::Infeasible => {
                write!(f, "forbidden edges make a complete matching impossible")
            }
        }
    }
}

impl Error for MatchingError {}
