//! Dual-optimality certificates for assignment solutions.
//!
//! The Hungarian solver maintains LP dual potentials `u` (rows) and `v`
//! (columns) throughout its run. For the rectangular assignment LP
//!
//! ```text
//! min Σ c_ij x_ij   s.t.  Σ_j x_ij = 1 ∀i,   Σ_i x_ij ≤ 1 ∀j,   x ≥ 0
//! ```
//!
//! the dual is `max Σ u_i + Σ v_j` subject to `u_i + v_j ≤ c_ij` for every
//! edge and `v_j ≤ 0` (rows are equality constraints, columns inequalities).
//! By weak duality any dual-feasible `(u, v)` lower-bounds every complete
//! matching's cost, so a matching whose cost *equals* `Σ u + Σ v` is provably
//! optimal — no re-solve needed. [`verify_dual_certificate`] checks exactly
//! that: shape, dual feasibility on every edge, the column sign condition,
//! and a zero duality gap, all in `i128` so no verification step can
//! overflow. Maximization problems are certified in the solver's internal
//! minimization space (weights negated, forbidden edges at the same
//! dominating finite cost the solver used).

use lockbind_obs as obs;
use std::fmt;

use crate::hungarian::dominating_forbidden_cost;
use crate::{Matching, WeightMatrix};

/// LP dual potentials extracted from a Hungarian solve, certifying that the
/// accompanying [`Matching`] is optimal for its [`WeightMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualCertificate {
    /// Row potentials in the solver's internal minimization space.
    pub u: Vec<i64>,
    /// Column potentials in the solver's internal minimization space.
    pub v: Vec<i64>,
    /// `true` if the solve maximized total weight (weights were negated
    /// internally); `false` for a min-cost solve.
    pub maximize: bool,
}

/// A matching bundled with the dual certificate that proves its optimality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedMatching {
    /// The optimal assignment.
    pub matching: Matching,
    /// Dual potentials certifying optimality.
    pub certificate: DualCertificate,
}

/// Why a certificate failed to verify. Each variant maps to one stable
/// `LB04xx` diagnostic code in `lockbind-check`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// Potential/assignment vector lengths disagree with the matrix shape.
    ShapeMismatch {
        /// Matrix rows.
        rows: usize,
        /// Matrix columns.
        cols: usize,
        /// Length of the row-potential vector.
        u_len: usize,
        /// Length of the column-potential vector.
        v_len: usize,
        /// Length of the assignment vector.
        assigned: usize,
    },
    /// The assignment maps a row to a column index outside the matrix.
    ColumnOutOfRange {
        /// Offending row.
        row: usize,
        /// Out-of-range column index.
        col: usize,
    },
    /// Two rows are assigned the same column.
    ColumnReused {
        /// The column claimed twice.
        col: usize,
    },
    /// A matched edge is forbidden in the weight matrix.
    ForbiddenEdgeMatched {
        /// Row of the forbidden edge.
        row: usize,
        /// Column of the forbidden edge.
        col: usize,
    },
    /// `u[row] + v[col] > c(row, col)` — the potentials are not dual
    /// feasible.
    DualInfeasible {
        /// Row of the violated constraint.
        row: usize,
        /// Column of the violated constraint.
        col: usize,
        /// Amount by which the constraint is violated.
        violation: i128,
    },
    /// A column potential is positive, violating `v_j ≤ 0`.
    ColumnSignViolation {
        /// Offending column.
        col: usize,
        /// The positive potential.
        potential: i64,
    },
    /// Dual objective and primal matching cost differ — the matching is not
    /// proven optimal.
    DualityGap {
        /// Matching cost in the internal minimization space.
        primal: i128,
        /// `Σ u + Σ v`.
        dual: i128,
    },
    /// The matching's reported `total` disagrees with the weights it claims
    /// to sum.
    TotalMismatch {
        /// The total stored in the matching.
        reported: i64,
        /// The total recomputed from the weight matrix.
        actual: i64,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::ShapeMismatch {
                rows,
                cols,
                u_len,
                v_len,
                assigned,
            } => write!(
                f,
                "certificate shape mismatch: matrix {rows}x{cols} but |u|={u_len}, |v|={v_len}, |assignment|={assigned}"
            ),
            CertificateError::ColumnOutOfRange { row, col } => {
                write!(f, "row {row} assigned to out-of-range column {col}")
            }
            CertificateError::ColumnReused { col } => {
                write!(f, "column {col} assigned to more than one row")
            }
            CertificateError::ForbiddenEdgeMatched { row, col } => {
                write!(f, "matched edge ({row}, {col}) is forbidden")
            }
            CertificateError::DualInfeasible {
                row,
                col,
                violation,
            } => write!(
                f,
                "dual constraint u[{row}] + v[{col}] <= c violated by {violation}"
            ),
            CertificateError::ColumnSignViolation { col, potential } => {
                write!(f, "column potential v[{col}] = {potential} > 0")
            }
            CertificateError::DualityGap { primal, dual } => {
                write!(f, "duality gap: primal {primal} != dual {dual}")
            }
            CertificateError::TotalMismatch { reported, actual } => {
                write!(
                    f,
                    "matching total {reported} disagrees with recomputed {actual}"
                )
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Independently verifies that `cert` proves `matching` optimal for
/// `weights`, without re-running the solver.
///
/// Checks, in order: shape agreement, assignment injectivity/range, that no
/// matched edge is forbidden and the reported total matches the weights,
/// dual feasibility of every `(row, col)` constraint, the `v_j ≤ 0` sign
/// condition, and finally a zero duality gap (`Σ u + Σ v` equals the
/// matching's cost in the internal minimization space). All arithmetic is
/// performed in `i128`, so verification itself cannot overflow.
///
/// # Errors
///
/// The first failed check, as a [`CertificateError`].
pub fn verify_dual_certificate(
    weights: &WeightMatrix,
    matching: &Matching,
    cert: &DualCertificate,
) -> Result<(), CertificateError> {
    obs::counter!("matching.cert_checks").inc();
    let n = weights.rows();
    let m = weights.cols();
    if cert.u.len() != n || cert.v.len() != m || matching.row_to_col.len() != n {
        return Err(CertificateError::ShapeMismatch {
            rows: n,
            cols: m,
            u_len: cert.u.len(),
            v_len: cert.v.len(),
            assigned: matching.row_to_col.len(),
        });
    }

    let mut used = vec![false; m];
    for (row, &col) in matching.row_to_col.iter().enumerate() {
        if col >= m {
            return Err(CertificateError::ColumnOutOfRange { row, col });
        }
        if used[col] {
            return Err(CertificateError::ColumnReused { col });
        }
        used[col] = true;
    }

    // Internal minimization-space cost, identical to the solver's: negated
    // weights for maximization, forbidden edges at the same dominating
    // finite cost (a pure function of the matrix, so it reproduces exactly).
    let forbidden = i128::from(dominating_forbidden_cost(weights));
    let cost = |r: usize, c: usize| -> i128 {
        match weights.get(r, c) {
            Some(w) => {
                if cert.maximize {
                    -i128::from(w)
                } else {
                    i128::from(w)
                }
            }
            None => forbidden,
        }
    };

    let mut primal: i128 = 0;
    let mut original_total: i64 = 0;
    for (row, &col) in matching.row_to_col.iter().enumerate() {
        match weights.get(row, col) {
            Some(w) => {
                original_total = original_total.wrapping_add(w);
                primal += cost(row, col);
            }
            None => return Err(CertificateError::ForbiddenEdgeMatched { row, col }),
        }
    }
    if original_total != matching.total {
        return Err(CertificateError::TotalMismatch {
            reported: matching.total,
            actual: original_total,
        });
    }

    for r in 0..n {
        for c in 0..m {
            let slack = cost(r, c) - i128::from(cert.u[r]) - i128::from(cert.v[c]);
            if slack < 0 {
                return Err(CertificateError::DualInfeasible {
                    row: r,
                    col: c,
                    violation: -slack,
                });
            }
        }
    }
    for (col, &p) in cert.v.iter().enumerate() {
        if p > 0 {
            return Err(CertificateError::ColumnSignViolation { col, potential: p });
        }
    }

    let dual: i128 = cert.u.iter().map(|&x| i128::from(x)).sum::<i128>()
        + cert.v.iter().map(|&x| i128::from(x)).sum::<i128>();
    if dual != primal {
        return Err(CertificateError::DualityGap { primal, dual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::{max_weight_matching_certified, min_cost_matching_certified};

    fn grid(rows: usize, cols: usize, salt: u64) -> WeightMatrix {
        WeightMatrix::from_fn(rows, cols, |r, c| {
            Some(((r as u64 * 31 + c as u64 * 17 + salt * 7) % 23) as i64 - 11)
        })
    }

    #[test]
    fn certified_solve_verifies_on_random_grids() {
        for salt in 0..40 {
            for (rows, cols) in [(1, 1), (2, 3), (4, 4), (5, 7), (6, 6)] {
                let w = grid(rows, cols, salt);
                let cm = max_weight_matching_certified(&w).expect("feasible");
                verify_dual_certificate(&w, &cm.matching, &cm.certificate)
                    .expect("certificate verifies");
                let cn = min_cost_matching_certified(&w).expect("feasible");
                verify_dual_certificate(&w, &cn.matching, &cn.certificate)
                    .expect("min-cost certificate verifies");
            }
        }
    }

    #[test]
    fn certified_total_matches_uncertified_solver() {
        let w = grid(5, 6, 3);
        let plain = crate::max_weight_matching(&w).expect("feasible");
        let certified = max_weight_matching_certified(&w).expect("feasible");
        assert_eq!(plain, certified.matching);
    }

    #[test]
    fn certificate_verifies_with_forbidden_edges() {
        let mut w = grid(3, 4, 9);
        w.forbid(0, 0);
        w.forbid(1, 2);
        let cm = max_weight_matching_certified(&w).expect("feasible");
        verify_dual_certificate(&w, &cm.matching, &cm.certificate).expect("verifies");
    }

    #[test]
    fn empty_matching_certifies() {
        let w = WeightMatrix::zero(0, 4);
        let cm = max_weight_matching_certified(&w).expect("empty");
        verify_dual_certificate(&w, &cm.matching, &cm.certificate).expect("verifies");
    }

    #[test]
    fn perturbed_row_potential_up_is_infeasible() {
        let w = grid(4, 5, 1);
        let mut cm = max_weight_matching_certified(&w).expect("feasible");
        cm.certificate.u[2] += 1;
        // The matched edge of row 2 is tight, so raising u breaks it.
        assert!(matches!(
            verify_dual_certificate(&w, &cm.matching, &cm.certificate),
            Err(CertificateError::DualInfeasible { .. })
        ));
    }

    #[test]
    fn perturbed_row_potential_down_opens_gap() {
        let w = grid(4, 5, 2);
        let mut cm = max_weight_matching_certified(&w).expect("feasible");
        cm.certificate.u[0] -= 1;
        assert!(matches!(
            verify_dual_certificate(&w, &cm.matching, &cm.certificate),
            Err(CertificateError::DualityGap { .. })
        ));
    }

    #[test]
    fn suboptimal_assignment_fails_gap_check() {
        // Distinct weights so any swap strictly loses.
        let mut w = WeightMatrix::zero(2, 2);
        w.set(0, 0, 10);
        w.set(0, 1, 1);
        w.set(1, 0, 2);
        w.set(1, 1, 20);
        let cm = max_weight_matching_certified(&w).expect("feasible");
        assert_eq!(cm.matching.row_to_col, vec![0, 1]);
        let swapped = Matching {
            row_to_col: vec![1, 0],
            total: 3,
        };
        assert!(matches!(
            verify_dual_certificate(&w, &swapped, &cm.certificate),
            Err(CertificateError::DualityGap { .. })
        ));
    }

    #[test]
    fn wrong_total_is_reported() {
        let w = grid(3, 3, 5);
        let mut cm = max_weight_matching_certified(&w).expect("feasible");
        cm.matching.total += 1;
        assert!(matches!(
            verify_dual_certificate(&w, &cm.matching, &cm.certificate),
            Err(CertificateError::TotalMismatch { .. })
        ));
    }

    #[test]
    fn shape_and_range_violations_are_reported() {
        let w = grid(3, 3, 6);
        let cm = max_weight_matching_certified(&w).expect("feasible");
        let mut short = cm.clone();
        short.certificate.u.pop();
        assert!(matches!(
            verify_dual_certificate(&w, &short.matching, &short.certificate),
            Err(CertificateError::ShapeMismatch { .. })
        ));
        let mut out = cm.clone();
        out.matching.row_to_col[0] = 99;
        assert!(matches!(
            verify_dual_certificate(&w, &out.matching, &out.certificate),
            Err(CertificateError::ColumnOutOfRange { .. })
        ));
        let mut dup = cm;
        dup.matching.row_to_col[0] = dup.matching.row_to_col[1];
        assert!(matches!(
            verify_dual_certificate(&w, &dup.matching, &dup.certificate),
            Err(CertificateError::ColumnReused { .. })
        ));
    }

    #[test]
    fn certificate_errors_render() {
        let e = CertificateError::DualityGap { primal: 3, dual: 4 };
        assert!(e.to_string().contains("duality gap"));
        let e = CertificateError::DualInfeasible {
            row: 1,
            col: 2,
            violation: 5,
        };
        assert!(e.to_string().contains("u[1]"));
    }
}
