//! Maximum-weight bipartite matching kernels for resource binding.
//!
//! Every binding algorithm in the companion crates (`lockbind-core`) reduces a
//! single clock cycle of a scheduled data-flow graph to an *assignment
//! problem*: `n` operations (rows) must each be mapped to one of `m >= n`
//! functional units (columns) so that the total edge weight is maximized
//! (obfuscation-aware binding, Eqn. 3 of the paper) or minimized (area-aware /
//! power-aware baselines).
//!
//! The crate provides:
//!
//! * [`WeightMatrix`] — a dense rectangular weight matrix with optional
//!   forbidden edges,
//! * [`max_weight_matching`] / [`min_cost_matching`] — the Hungarian algorithm
//!   with potentials (Jonker–Volgenant style shortest augmenting paths),
//!   `O(n^2 m)`, exact,
//! * [`max_weight_matching_certified`] / [`min_cost_matching_certified`] —
//!   the same solve, additionally returning the solver's final LP dual
//!   potentials as a [`DualCertificate`]; [`verify_dual_certificate`] proves
//!   optimality offline (dual feasibility + zero duality gap) without
//!   re-running the solver,
//! * [`HungarianState`] — an incremental solver that keeps the LP dual
//!   potentials alive across weight edits: after a column update only the
//!   invalidated rows are re-augmented, and [`HungarianState::objective_bound`]
//!   reads a weak-duality bound off the repaired duals without solving (the
//!   co-design branch-and-bound pruning hook),
//! * [`brute_force`] — an exponential reference implementation used by the
//!   test-suite to validate the Hungarian solver on small instances.
//!
//! # Example
//!
//! Bind two operations to three FUs, maximizing locked-input hits (this is the
//! worked example of Fig. 2 in the paper: `OPA -> FU2`, `OPB -> FU1`, total
//! cost 13):
//!
//! ```
//! use lockbind_matching::{WeightMatrix, max_weight_matching};
//!
//! # fn main() -> Result<(), lockbind_matching::MatchingError> {
//! // rows = operations (OPA, OPB), cols = FUs (FU1, FU2, FU3)
//! let mut w = WeightMatrix::zero(2, 3);
//! w.set(0, 0, 6); // K[x, OPA] on FU1 (locks x)
//! w.set(0, 1, 9); // K[y, OPA] on FU2 (locks y)
//! w.set(1, 0, 4); // K[x, OPB]
//! w.set(1, 1, 3); // K[y, OPB]
//! // FU3 is unlocked: weight 0 edges (already zero).
//! let m = max_weight_matching(&w)?;
//! assert_eq!(m.total, 13);
//! assert_eq!(m.row_to_col, vec![1, 0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod certificate;
mod error;
mod hungarian;
mod incremental;
mod matrix;

pub use brute::brute_force;
pub use certificate::{
    verify_dual_certificate, CertificateError, CertifiedMatching, DualCertificate,
};
pub use error::MatchingError;
pub use hungarian::{
    max_weight_matching, max_weight_matching_certified, min_cost_matching,
    min_cost_matching_certified,
};
pub use incremental::{HungarianState, IncrementalStats};
pub use matrix::{Matching, WeightMatrix};
