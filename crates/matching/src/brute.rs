//! Exponential reference solver used to validate the Hungarian implementation.

use crate::{Matching, MatchingError, WeightMatrix};

/// Solves the assignment problem by enumerating every injection of rows into
/// columns. Exponential — intended for testing on instances with at most ~8
/// rows/columns.
///
/// `maximize` selects between max-weight and min-cost objectives.
///
/// # Errors
///
/// Same conditions as [`crate::max_weight_matching`].
///
/// # Example
/// ```
/// use lockbind_matching::{WeightMatrix, brute_force, max_weight_matching};
/// # fn main() -> Result<(), lockbind_matching::MatchingError> {
/// let w = WeightMatrix::from_fn(3, 3, |r, c| Some((r * c) as i64));
/// assert_eq!(brute_force(&w, true)?.total, max_weight_matching(&w)?.total);
/// # Ok(())
/// # }
/// ```
pub fn brute_force(weights: &WeightMatrix, maximize: bool) -> Result<Matching, MatchingError> {
    let n = weights.rows();
    let m = weights.cols();
    if n == 0 {
        return Ok(Matching {
            row_to_col: Vec::new(),
            total: 0,
        });
    }
    if m == 0 {
        return Err(MatchingError::NoColumns);
    }
    if n > m {
        return Err(MatchingError::MoreRowsThanCols { rows: n, cols: m });
    }

    let mut best: Option<(i64, Vec<usize>)> = None;
    let mut assignment = vec![usize::MAX; n];
    let mut used = vec![false; m];
    recurse(
        weights,
        maximize,
        0,
        0,
        &mut assignment,
        &mut used,
        &mut best,
    );
    match best {
        Some((total, row_to_col)) => Ok(Matching { row_to_col, total }),
        None => Err(MatchingError::Infeasible),
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    weights: &WeightMatrix,
    maximize: bool,
    row: usize,
    acc: i64,
    assignment: &mut Vec<usize>,
    used: &mut Vec<bool>,
    best: &mut Option<(i64, Vec<usize>)>,
) {
    if row == weights.rows() {
        let better = match best {
            None => true,
            Some((b, _)) => {
                if maximize {
                    acc > *b
                } else {
                    acc < *b
                }
            }
        };
        if better {
            *best = Some((acc, assignment.clone()));
        }
        return;
    }
    for c in 0..weights.cols() {
        if used[c] {
            continue;
        }
        if let Some(w) = weights.get(row, c) {
            used[c] = true;
            assignment[row] = c;
            recurse(weights, maximize, row + 1, acc + w, assignment, used, best);
            assignment[row] = usize::MAX;
            used[c] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_min_max_diverge() {
        let w = WeightMatrix::from_fn(2, 2, |r, c| Some(if r == c { 0 } else { 5 }));
        assert_eq!(brute_force(&w, true).map(|m| m.total), Ok(10));
        assert_eq!(brute_force(&w, false).map(|m| m.total), Ok(0));
    }

    #[test]
    fn brute_force_detects_infeasible() {
        let w = WeightMatrix::from_fn(1, 1, |_, _| None);
        assert_eq!(brute_force(&w, true), Err(MatchingError::Infeasible));
    }
}
