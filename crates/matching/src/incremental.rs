//! Incremental Hungarian solver with warm-started dual potentials.
//!
//! The co-design searches of `lockbind-core` solve millions of assignment
//! problems that differ from their predecessor in a single column (one FU's
//! locked-minterm set changed). Re-running the cold solver discards the LP
//! dual potentials it just computed, even though they remain feasible — or
//! very nearly feasible — for the perturbed instance.
//!
//! [`HungarianState`] keeps the matrix, the partial matching, and the dual
//! potentials alive across edits. A column update triggers a *repair* that
//! restores the solver invariants (dual feasibility everywhere, matched
//! edges tight, `v_j = 0` on unmatched columns, `v_j <= 0`) by unmatching
//! only the rows whose optimality evidence was invalidated; a subsequent
//! [`HungarianState::solve`] re-augments just those rows. Between repair and
//! solve, [`HungarianState::objective_bound`] reads the dual objective off
//! the repaired potentials — by weak duality a valid bound on *any* complete
//! matching's value, which is what lets callers prune whole solves.
//!
//! The solved state always carries a [`DualCertificate`] accepted by
//! [`verify_dual_certificate`](crate::verify_dual_certificate), so the warm
//! path is held to exactly the same proof obligations as the cold one.

use lockbind_obs as obs;

use crate::certificate::{CertifiedMatching, DualCertificate};
use crate::hungarian::dominating_forbidden_cost;
use crate::{Matching, MatchingError, WeightMatrix};

const INF: i64 = i64::MAX / 2;

/// Cumulative work counters of one [`HungarianState`].
///
/// `rows_total` counts the rows a cold re-solve would have augmented (one
/// per row per solve); `rows_reaugmented` counts the rows the warm path
/// actually re-augmented. Their ratio is the warm-start hit rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Calls to [`HungarianState::solve`].
    pub solves: u64,
    /// Rows a cold solver would have augmented across all solves.
    pub rows_total: u64,
    /// Rows actually re-augmented by the warm path.
    pub rows_reaugmented: u64,
    /// Column updates applied (no-op updates excluded).
    pub columns_updated: u64,
    /// Dijkstra relaxation steps spent in augmentation phases.
    pub augment_steps: u64,
}

impl IncrementalStats {
    /// Fraction of row augmentations the warm start avoided (`1.0` when no
    /// solve has happened yet).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            1.0 - self.rows_reaugmented as f64 / self.rows_total as f64
        }
    }
}

/// An assignment-problem instance that survives weight edits: warm-started
/// duals, incremental re-augmentation, and a pre-solve dual objective bound.
///
/// # Example
///
/// ```
/// use lockbind_matching::{HungarianState, WeightMatrix};
/// # fn main() -> Result<(), lockbind_matching::MatchingError> {
/// let mut w = WeightMatrix::zero(2, 3);
/// w.set(0, 0, 6);
/// w.set(0, 1, 9);
/// w.set(1, 0, 4);
/// let mut state = HungarianState::new(&w, true)?;
/// assert_eq!(state.solve()?.matching.total, 13);
/// // Perturb one column: only the invalidated rows re-augment.
/// state.set_column(1, &[1, 0]);
/// assert_eq!(state.solve()?.matching.total, 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HungarianState {
    weights: WeightMatrix,
    maximize: bool,
    n: usize,
    m: usize,
    /// Row potentials, 1-indexed (`u[0]` unused).
    u: Vec<i64>,
    /// Column potentials, 1-indexed (`v[0]` is the classic dummy column).
    v: Vec<i64>,
    /// `p[j]` = row (1-indexed) matched to column `j`; 0 = unmatched.
    p: Vec<usize>,
    /// Inverse of `p`: column matched to each row; 0 = unmatched.
    row_col: Vec<usize>,
    /// Rows that must be (re-)augmented by the next solve.
    dirty: Vec<bool>,
    /// Columns (1-indexed) edited since the last repair.
    pending: Vec<usize>,
    pending_flag: Vec<bool>,
    /// The forbidden-edge sentinel cost at the last repair.
    forbidden_cost: i64,
    /// Forbidden entries per column (0-indexed), to re-flag columns when the
    /// sentinel itself moves.
    forbidden_in_col: Vec<u32>,
    stats: IncrementalStats,
    // Scratch buffers for the augmentation phase, reused across solves so
    // the hot path (millions of tiny solves per sweep) never reallocates.
    scratch_minv: Vec<i64>,
    scratch_way: Vec<usize>,
    scratch_used: Vec<bool>,
}

impl HungarianState {
    /// Builds a warm-startable instance from `weights`. No solving happens
    /// yet: every row starts dirty and the first [`solve`](Self::solve) pays
    /// the full cold cost (with row potentials pre-seeded to the row minima,
    /// so even the cold pass starts dual-feasible).
    ///
    /// # Errors
    ///
    /// [`MatchingError::NoColumns`] / [`MatchingError::MoreRowsThanCols`]
    /// under the same conditions as the cold solver.
    pub fn new(weights: &WeightMatrix, maximize: bool) -> Result<Self, MatchingError> {
        let n = weights.rows();
        let m = weights.cols();
        if n > 0 && m == 0 {
            return Err(MatchingError::NoColumns);
        }
        if n > m {
            return Err(MatchingError::MoreRowsThanCols { rows: n, cols: m });
        }
        let mut forbidden_in_col = vec![0u32; m];
        for r in 0..n {
            for (c, count) in forbidden_in_col.iter_mut().enumerate() {
                if !weights.is_allowed(r, c) {
                    *count += 1;
                }
            }
        }
        let mut state = HungarianState {
            weights: weights.clone(),
            maximize,
            n,
            m,
            u: vec![0; n + 1],
            v: vec![0; m + 1],
            p: vec![0; m + 1],
            row_col: vec![0; n + 1],
            dirty: vec![true; n + 1],
            pending: Vec::new(),
            pending_flag: vec![false; m + 1],
            forbidden_cost: dominating_forbidden_cost(weights),
            forbidden_in_col,
            stats: IncrementalStats::default(),
            scratch_minv: Vec::new(),
            scratch_way: Vec::new(),
            scratch_used: Vec::new(),
        };
        // Seed u with the row minima: dual feasible for v = 0, so
        // `objective_bound` is valid even before the first solve.
        for i in 1..=state.n {
            state.u[i] = (1..=state.m).map(|j| state.cost(i, j)).min().unwrap_or(0);
        }
        Ok(state)
    }

    /// The current weights (reflecting all edits applied so far).
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// `true` if this state maximizes total weight.
    pub fn maximize(&self) -> bool {
        self.maximize
    }

    /// Internal minimization-space cost, 1-indexed (identical to the cold
    /// solver's and to certificate verification).
    fn cost(&self, i: usize, j: usize) -> i64 {
        match self.weights.get(i - 1, j - 1) {
            Some(w) => {
                if self.maximize {
                    -w
                } else {
                    w
                }
            }
            None => self.forbidden_cost,
        }
    }

    fn mark_col(&mut self, col: usize) {
        let j = col + 1;
        if !self.pending_flag[j] {
            self.pending_flag[j] = true;
            self.pending.push(j);
        }
    }

    /// Sets one weight (re-allowing the edge if forbidden), invalidating only
    /// the touched column. A no-op when the cell already holds `weight`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices or `|weight|` above
    /// [`WeightMatrix::MAX_WEIGHT`], like [`WeightMatrix::set`].
    pub fn set_weight(&mut self, row: usize, col: usize, weight: i64) {
        if self.weights.get(row, col) == Some(weight) {
            return;
        }
        if !self.weights.is_allowed(row, col) {
            self.forbidden_in_col[col] -= 1;
        }
        self.weights.set(row, col, weight);
        self.stats.columns_updated += 1;
        self.mark_col(col);
    }

    /// Marks edge `(row, col)` forbidden, invalidating the touched column.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn forbid(&mut self, row: usize, col: usize) {
        if !self.weights.is_allowed(row, col) {
            return;
        }
        self.weights.forbid(row, col);
        self.forbidden_in_col[col] += 1;
        self.stats.columns_updated += 1;
        self.mark_col(col);
    }

    /// Replaces an entire column of weights (all edges allowed). This is the
    /// co-design hot path: one locked FU's minterm set changed, so exactly
    /// one column per cycle subproblem moves. Skips the update entirely when
    /// the column already holds `weights`.
    ///
    /// # Panics
    /// Panics unless `weights.len()` equals the number of rows.
    pub fn set_column(&mut self, col: usize, weights: &[i64]) {
        assert_eq!(
            weights.len(),
            self.n,
            "set_column needs one weight per row ({} != {})",
            weights.len(),
            self.n
        );
        let unchanged = weights
            .iter()
            .enumerate()
            .all(|(r, &w)| self.weights.get(r, col) == Some(w));
        if unchanged {
            return;
        }
        for (r, &w) in weights.iter().enumerate() {
            if !self.weights.is_allowed(r, col) {
                self.forbidden_in_col[col] -= 1;
            }
            self.weights.set(r, col, w);
        }
        self.stats.columns_updated += 1;
        self.mark_col(col);
    }

    /// Restores the solver invariants after pending edits:
    ///
    /// 1. the forbidden-edge sentinel is recomputed; if it moved, every
    ///    column holding a forbidden entry is treated as edited too (their
    ///    internal costs changed with it);
    /// 2. each edited column keeps its matched edge only if that edge is
    ///    still tight *and* the column potential is still feasible against
    ///    every row; otherwise the row is unmatched (dirty) and the freed
    ///    column's potential is reset to 0;
    /// 3. a worklist pass re-caps any row potential that the raised column
    ///    potentials made infeasible (`u_i > min_j (c_ij - v_j)`), unmatching
    ///    capped rows. Each column's potential can only rise to 0 once, so
    ///    the pass terminates.
    ///
    /// Afterwards: duals feasible on every edge, matched edges tight,
    /// unmatched columns at `v = 0`, all `v <= 0` — exactly the state the
    /// augmentation phases and the weak-duality bound require.
    fn repair(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let sentinel = dominating_forbidden_cost(&self.weights);
        if sentinel != self.forbidden_cost {
            self.forbidden_cost = sentinel;
            for c in 0..self.m {
                if self.forbidden_in_col[c] > 0 {
                    self.mark_col(c);
                }
            }
        }
        let changed = std::mem::take(&mut self.pending);
        for &j in &changed {
            self.pending_flag[j] = false;
        }

        // Phase 1: per edited column, keep or drop the matched edge.
        for &j in &changed {
            let r = self.p[j];
            if r != 0 {
                let tight = self.cost(r, j) - self.u[r] == self.v[j];
                let feasible = (1..=self.n).all(|i| self.u[i] + self.v[j] <= self.cost(i, j));
                if !(tight && feasible) {
                    self.p[j] = 0;
                    self.row_col[r] = 0;
                    self.dirty[r] = true;
                    self.v[j] = 0;
                }
            } else {
                // Unmatched columns sit at v = 0 by invariant; keep them
                // there (costs moving cannot change that).
                self.v[j] = 0;
            }
        }

        // Phase 2: re-establish dual feasibility for every row against the
        // edited / re-zeroed columns.
        let mut work = changed;
        let mut in_work = vec![false; self.m + 1];
        for &j in &work {
            in_work[j] = true;
        }
        while let Some(j) = work.pop() {
            in_work[j] = false;
            for i in 1..=self.n {
                if self.u[i] + self.v[j] > self.cost(i, j) {
                    let cap = (1..=self.m)
                        .map(|jj| self.cost(i, jj) - self.v[jj])
                        .min()
                        .unwrap_or(0);
                    debug_assert!(cap < self.u[i]);
                    self.u[i] = cap;
                    let j0 = self.row_col[i];
                    if j0 != 0 {
                        self.p[j0] = 0;
                        self.row_col[i] = 0;
                        self.v[j0] = 0;
                        if !in_work[j0] {
                            in_work[j0] = true;
                            work.push(j0);
                        }
                    }
                    self.dirty[i] = true;
                }
            }
        }
    }

    /// A bound on the value of **any** complete matching of the current
    /// weights, read off the (repaired) dual potentials without solving: an
    /// *upper* bound on the total weight when maximizing, a *lower* bound on
    /// the total cost when minimizing (weak LP duality; see DESIGN.md §14).
    ///
    /// After [`solve`](Self::solve) the bound is exact (zero duality gap).
    /// The forbidden-edge sentinel makes the bound valid for matchings that
    /// avoid forbidden edges too.
    pub fn objective_bound(&mut self) -> i64 {
        self.repair();
        let dual: i128 = self.u[1..=self.n]
            .iter()
            .chain(&self.v[1..=self.m])
            .map(|&x| i128::from(x))
            .sum();
        let bound = if self.maximize { -dual } else { dual };
        bound.clamp(i128::from(-INF), i128::from(INF)) as i64
    }

    /// Repairs pending edits and re-augments every dirty row — the shared
    /// core of [`solve`](Self::solve) and [`solve_total`](Self::solve_total).
    fn run_solve(&mut self) {
        self.repair();
        obs::counter!("matching.warm_solves").inc();
        obs::counter!("matching.warm_rows_total").add(self.n as u64);
        self.stats.solves += 1;
        self.stats.rows_total += self.n as u64;

        let mut reaugmented = 0u64;
        let mut augment_steps = 0u64;
        for i in 1..=self.n {
            if self.dirty[i] {
                self.augment_row(i, &mut augment_steps);
                self.dirty[i] = false;
                reaugmented += 1;
            }
        }
        self.stats.rows_reaugmented += reaugmented;
        obs::counter!("matching.warm_rows_reaugmented").add(reaugmented);
        obs::counter!("matching.augment_paths").add(reaugmented);
        obs::counter!("matching.augment_steps").add(augment_steps);
        self.stats.augment_steps += augment_steps;

        // Refresh the row -> column view from p.
        for rc in self.row_col.iter_mut() {
            *rc = 0;
        }
        for j in 1..=self.m {
            if self.p[j] != 0 {
                self.row_col[self.p[j]] = j;
            }
        }
    }

    /// Repairs pending edits and re-augments every dirty row, returning the
    /// optimal matching with its dual certificate. Rows untouched by the
    /// edits are never re-augmented — that is the warm start.
    ///
    /// # Errors
    ///
    /// [`MatchingError::Infeasible`] when forbidden edges rule out every
    /// complete matching (the state stays consistent: later edits can
    /// restore feasibility).
    pub fn solve(&mut self) -> Result<CertifiedMatching, MatchingError> {
        self.run_solve();
        let mut row_to_col = vec![usize::MAX; self.n];
        for j in 1..=self.m {
            if self.p[j] != 0 {
                row_to_col[self.p[j] - 1] = j - 1;
            }
        }
        debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));

        let mut total = 0i64;
        for (r, &c) in row_to_col.iter().enumerate() {
            match self.weights.get(r, c) {
                Some(w) => total += w,
                None => return Err(MatchingError::Infeasible),
            }
        }
        Ok(CertifiedMatching {
            matching: Matching { row_to_col, total },
            certificate: DualCertificate {
                u: self.u[1..=self.n].to_vec(),
                v: self.v[1..=self.m].to_vec(),
                maximize: self.maximize,
            },
        })
    }

    /// Like [`solve`](Self::solve), but returns only the optimal total —
    /// no matching vector, no certificate, no allocation. This is the
    /// co-design hot path, where only the objective value is scored and the
    /// full certified solve is reserved for the winning configuration.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_total(&mut self) -> Result<i64, MatchingError> {
        self.run_solve();
        let mut total = 0i64;
        for j in 1..=self.m {
            if self.p[j] != 0 {
                match self.weights.get(self.p[j] - 1, j - 1) {
                    Some(w) => total += w,
                    None => return Err(MatchingError::Infeasible),
                }
            }
        }
        Ok(total)
    }

    /// One shortest-augmenting-path phase for row `i` — the exact inner loop
    /// of the cold solver, operating on the live potentials.
    fn augment_row(&mut self, i: usize, augment_steps: &mut u64) {
        self.p[0] = i;
        let mut j0 = 0usize;
        let mut minv = std::mem::take(&mut self.scratch_minv);
        let mut way = std::mem::take(&mut self.scratch_way);
        let mut used = std::mem::take(&mut self.scratch_used);
        minv.clear();
        minv.resize(self.m + 1, INF);
        way.clear();
        way.resize(self.m + 1, 0);
        used.clear();
        used.resize(self.m + 1, false);
        loop {
            *augment_steps += 1;
            used[j0] = true;
            let i0 = self.p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=self.m {
                if !used[j] {
                    let cur = self.cost(i0, j) - self.u[i0] - self.v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta < INF, "augmenting path search stalled");
            for j in 0..=self.m {
                if used[j] {
                    self.u[self.p[j]] += delta;
                    self.v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if self.p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            self.p[j0] = self.p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
        self.scratch_minv = minv;
        self.scratch_way = way;
        self.scratch_used = used;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force, max_weight_matching, min_cost_matching, verify_dual_certificate};

    fn grid(rows: usize, cols: usize, salt: u64) -> WeightMatrix {
        WeightMatrix::from_fn(rows, cols, |r, c| {
            Some(((r as u64 * 31 + c as u64 * 17 + salt * 7) % 23) as i64 - 11)
        })
    }

    fn check_state(state: &mut HungarianState) -> CertifiedMatching {
        let solved = state.solve().expect("feasible");
        verify_dual_certificate(state.weights(), &solved.matching, &solved.certificate)
            .expect("warm certificate verifies");
        solved
    }

    #[test]
    fn cold_solve_matches_reference() {
        for salt in 0..20 {
            for (rows, cols) in [(0, 0), (0, 3), (1, 1), (2, 3), (4, 4), (5, 7)] {
                let w = grid(rows, cols, salt);
                let mut state = HungarianState::new(&w, true).expect("valid shape");
                let warm = check_state(&mut state);
                let cold = max_weight_matching(&w).expect("feasible");
                assert_eq!(warm.matching.total, cold.total);
                let mut state = HungarianState::new(&w, false).expect("valid shape");
                let warm = check_state(&mut state);
                let cold = min_cost_matching(&w).expect("feasible");
                assert_eq!(warm.matching.total, cold.total);
            }
        }
    }

    #[test]
    fn shape_errors_match_cold_solver() {
        assert_eq!(
            HungarianState::new(&WeightMatrix::zero(2, 0), true).err(),
            Some(MatchingError::NoColumns)
        );
        assert_eq!(
            HungarianState::new(&WeightMatrix::zero(3, 2), true).err(),
            Some(MatchingError::MoreRowsThanCols { rows: 3, cols: 2 })
        );
    }

    #[test]
    fn column_update_tracks_cold_solver() {
        let w = grid(4, 5, 3);
        let mut state = HungarianState::new(&w, true).expect("valid");
        check_state(&mut state);
        for step in 0..30 {
            let col = step % 5;
            let weights: Vec<i64> = (0..4)
                .map(|r| ((r * 7 + step * 13) % 19) as i64 - 9)
                .collect();
            state.set_column(col, &weights);
            let warm = check_state(&mut state);
            let cold = max_weight_matching(state.weights()).expect("feasible");
            assert_eq!(warm.matching.total, cold.total, "step {step}");
        }
        // Warm start must have saved work relative to 31 cold solves.
        let stats = state.stats();
        assert!(stats.rows_reaugmented < stats.rows_total);
        assert!(stats.warm_hit_rate() > 0.0);
    }

    #[test]
    fn objective_bound_is_sound_and_tight_after_solve() {
        let w = grid(4, 6, 8);
        let mut state = HungarianState::new(&w, true).expect("valid");
        let opt = brute_force(&w, true).expect("feasible").total;
        assert!(
            state.objective_bound() >= opt,
            "pre-solve bound must dominate"
        );
        let solved = check_state(&mut state);
        assert_eq!(solved.matching.total, opt);
        assert_eq!(state.objective_bound(), opt, "zero gap after solve");
        // Perturb a column down: the bound may stay above the new optimum but
        // never below it.
        state.set_column(2, &[-5, -5, -5, -5]);
        let new_opt = brute_force(state.weights(), true).expect("feasible").total;
        assert!(state.objective_bound() >= new_opt);
        assert_eq!(check_state(&mut state).matching.total, new_opt);
    }

    #[test]
    fn minimize_bound_is_lower_bound() {
        let w = grid(3, 4, 5);
        let mut state = HungarianState::new(&w, false).expect("valid");
        let opt = brute_force(&w, false).expect("feasible").total;
        assert!(state.objective_bound() <= opt);
        check_state(&mut state);
        assert_eq!(state.objective_bound(), opt);
    }

    #[test]
    fn previously_matched_cell_forbidden_mid_sequence() {
        // Pin the behavior the incremental co-design path depends on: when
        // the cell under the current matching is forbidden, the matched row
        // goes dirty and re-augments around it; certificates stay clean.
        let mut w = WeightMatrix::zero(2, 3);
        w.set(0, 0, 10);
        w.set(0, 1, 1);
        w.set(1, 1, 8);
        w.set(1, 2, 2);
        let mut state = HungarianState::new(&w, true).expect("valid");
        let first = check_state(&mut state);
        assert_eq!(first.matching.row_to_col, vec![0, 1]);
        state.forbid(0, 0);
        let second = check_state(&mut state);
        // Best without (0,0): row 0 -> col 2 (0) + row 1 -> col 1 (8).
        assert_eq!(second.matching.total, 8);
        let cold = max_weight_matching(state.weights()).expect("feasible");
        assert_eq!(second.matching.total, cold.total);
        assert_ne!(
            second.matching.row_to_col[0], 0,
            "forbidden edge must not be used"
        );
        // Re-allowing the cell restores the original optimum.
        state.set_weight(0, 0, 10);
        let third = check_state(&mut state);
        assert_eq!(third.matching.total, 18);
    }

    #[test]
    fn fully_forbidden_row_is_infeasible_then_recovers() {
        let mut w = WeightMatrix::from_fn(2, 2, |_, _| Some(4));
        w.forbid(0, 0);
        let mut state = HungarianState::new(&w, true).expect("valid");
        check_state(&mut state);
        state.forbid(0, 1);
        assert_eq!(state.solve().unwrap_err(), MatchingError::Infeasible);
        // The state is still consistent: restoring an edge recovers.
        state.set_weight(0, 1, 6);
        let solved = check_state(&mut state);
        assert_eq!(solved.matching.total, 10);
    }

    #[test]
    fn noop_updates_do_not_dirty_the_state() {
        let w = grid(3, 4, 2);
        let mut state = HungarianState::new(&w, true).expect("valid");
        check_state(&mut state);
        let before = state.stats();
        let col: Vec<i64> = (0..3).map(|r| state.weights().get(r, 1).unwrap()).collect();
        state.set_column(1, &col);
        state.set_weight(0, 0, state.weights().get(0, 0).unwrap());
        check_state(&mut state);
        let after = state.stats();
        assert_eq!(after.columns_updated, before.columns_updated);
        assert_eq!(after.rows_reaugmented, before.rows_reaugmented);
    }

    #[test]
    fn solve_total_agrees_with_certified_solve() {
        let w = grid(3, 5, 11);
        let mut a = HungarianState::new(&w, true).expect("valid");
        let mut b = HungarianState::new(&w, true).expect("valid");
        for step in 0..20 {
            let col = step % 5;
            let weights: Vec<i64> = (0..3)
                .map(|r| ((r * 5 + step * 3) % 13) as i64 - 6)
                .collect();
            a.set_column(col, &weights);
            b.set_column(col, &weights);
            assert_eq!(
                a.solve_total().expect("feasible"),
                check_state(&mut b).matching.total
            );
        }
        // Infeasibility is reported identically by both entry points.
        let mut w = WeightMatrix::zero(1, 1);
        w.forbid(0, 0);
        let mut s = HungarianState::new(&w, true).expect("valid");
        assert_eq!(s.solve_total().unwrap_err(), MatchingError::Infeasible);
    }

    #[test]
    fn empty_instance_solves_trivially() {
        let mut state = HungarianState::new(&WeightMatrix::zero(0, 0), true).expect("valid");
        let solved = state.solve().expect("empty");
        assert_eq!(solved.matching.total, 0);
        assert_eq!(state.objective_bound(), 0);
    }

    #[test]
    fn sentinel_shift_reflags_forbidden_columns() {
        // Raising the max weight moves the forbidden sentinel; the forbidden
        // column's internal cost changes with it and certificates must still
        // verify against the recomputed sentinel.
        let mut w = WeightMatrix::from_fn(2, 3, |r, c| Some((r + c) as i64));
        w.forbid(0, 2);
        let mut state = HungarianState::new(&w, true).expect("valid");
        check_state(&mut state);
        state.set_weight(1, 0, 4000);
        let solved = check_state(&mut state);
        let cold = max_weight_matching(state.weights()).expect("feasible");
        assert_eq!(solved.matching.total, cold.total);
    }
}
