//! Property-based validation of the Hungarian solver against brute force.

use lockbind_matching::{
    brute_force, max_weight_matching, min_cost_matching, MatchingError, WeightMatrix,
};
use proptest::prelude::*;

fn matrix_strategy(
    max_rows: usize,
    max_cols: usize,
    forbid: bool,
) -> impl Strategy<Value = WeightMatrix> {
    (1..=max_rows, 1..=max_cols)
        .prop_flat_map(move |(r, c)| {
            let cols = c.max(r); // keep feasible shape: cols >= rows
            let cells = proptest::collection::vec(
                (
                    -100i64..=100,
                    proptest::bool::weighted(if forbid { 0.15 } else { 0.0 }),
                ),
                r * cols,
            );
            (Just(r), Just(cols), cells)
        })
        .prop_map(|(rows, cols, cells)| {
            WeightMatrix::from_fn(rows, cols, |r, c| {
                let (w, forbidden) = cells[r * cols + c];
                if forbidden {
                    None
                } else {
                    Some(w)
                }
            })
        })
}

proptest! {
    #[test]
    fn hungarian_matches_brute_force_max(w in matrix_strategy(5, 6, false)) {
        let h = max_weight_matching(&w).expect("complete graph is feasible");
        let b = brute_force(&w, true).expect("complete graph is feasible");
        prop_assert_eq!(h.total, b.total);
    }

    #[test]
    fn hungarian_matches_brute_force_min(w in matrix_strategy(5, 6, false)) {
        let h = min_cost_matching(&w).expect("complete graph is feasible");
        let b = brute_force(&w, false).expect("complete graph is feasible");
        prop_assert_eq!(h.total, b.total);
    }

    #[test]
    fn hungarian_matches_brute_force_with_forbidden(w in matrix_strategy(4, 5, true)) {
        match (max_weight_matching(&w), brute_force(&w, true)) {
            (Ok(h), Ok(b)) => prop_assert_eq!(h.total, b.total),
            (Err(MatchingError::Infeasible), Err(MatchingError::Infeasible)) => {}
            (h, b) => prop_assert!(false, "solver disagreement: {:?} vs {:?}", h, b),
        }
    }

    #[test]
    fn assignment_is_injective_and_total_is_consistent(w in matrix_strategy(6, 8, false)) {
        let m = max_weight_matching(&w).expect("feasible");
        let mut seen = vec![false; w.cols()];
        let mut total = 0i64;
        for (r, &c) in m.row_to_col.iter().enumerate() {
            prop_assert!(c < w.cols());
            prop_assert!(!seen[c]);
            seen[c] = true;
            total += w.get(r, c).expect("selected edge must be allowed");
        }
        prop_assert_eq!(total, m.total);
    }

    #[test]
    fn max_dominates_every_random_permutation(w in matrix_strategy(5, 5, false), seed in any::<u64>()) {
        let m = max_weight_matching(&w).expect("feasible");
        // Build a deterministic pseudo-random permutation from the seed.
        let n = w.rows();
        let mut perm: Vec<usize> = (0..w.cols()).collect();
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let total: i64 = (0..n).map(|r| w.get(r, perm[r]).expect("allowed")).sum();
        prop_assert!(m.total >= total);
    }
}
