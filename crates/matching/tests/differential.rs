//! Differential matching oracle suite: the warm-started incremental solver
//! ([`HungarianState`]) cross-checked against the cold Hungarian solver and
//! against brute-force enumeration, on random weight matrices — rectangular
//! shapes, forbidden-entry patterns, negative and near-`MAX_WEIGHT` extreme
//! weights, degenerate all-tied instances — and across mutation chains that
//! perturb one cell, one row, or one column per step, re-checking the LP dual
//! certificate after every incremental solve. This is the harness that keeps
//! the co-design fast path pinned to the exact Eqn. 3 / Thm. 2 optimum: the
//! warm path may never differ from the cold path by a single unit of weight,
//! and its duals must verify clean at every step.
//!
//! CI runs this file with `PROPTEST_CASES=512`; the local default is 256
//! cases per property (the acceptance floor for this suite).

use lockbind_matching::{
    brute_force, max_weight_matching_certified, min_cost_matching_certified,
    verify_dual_certificate, HungarianState, MatchingError, WeightMatrix,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const EXTREME: i64 = WeightMatrix::MAX_WEIGHT;

/// One random instance: shape, weights, forbidden pattern.
#[derive(Debug, Clone)]
struct Instance {
    rows: usize,
    cols: usize,
    /// Row-major; `None` = forbidden.
    cells: Vec<Option<i64>>,
}

impl Instance {
    fn matrix(&self) -> WeightMatrix {
        WeightMatrix::from_fn(self.rows, self.cols, |r, c| self.cells[r * self.cols + c])
    }
}

/// A single mutation step applied to a live [`HungarianState`].
#[derive(Debug, Clone)]
enum Mutation {
    /// Set one cell (re-allows it if forbidden).
    Cell { row: usize, col: usize, weight: i64 },
    /// Forbid one cell.
    Forbid { row: usize, col: usize },
    /// Replace one whole column (the co-design hot path).
    Column { col: usize, weights: Vec<i64> },
    /// Replace one whole row, cell by cell.
    Row { row: usize, weights: Vec<i64> },
}

/// Weight strategy spanning the regimes the suite must cover: small values
/// with many degenerate ties, mid-range negatives, and near-`MAX_WEIGHT`
/// extremes (the vendored proptest has no `prop_oneof!`, so regimes are
/// selected by an explicit discriminant).
fn weight_strategy() -> impl Strategy<Value = i64> + Clone {
    (0u32..8, -3i64..=3, -1000i64..=1000, 0usize..4).prop_map(|(sel, small, mid, ext)| match sel {
        0..=3 => small,
        4..=6 => mid,
        _ => [EXTREME, -EXTREME, EXTREME - 1, -EXTREME + 1][ext],
    })
}

/// `Some(weight)` most of the time, `None` (forbidden) with weight 1/8.
fn cell_strategy() -> impl Strategy<Value = Option<i64>> + Clone {
    (0u32..8, weight_strategy()).prop_map(|(sel, w)| if sel == 0 { None } else { Some(w) })
}

/// Random solvable shape (`rows <= cols`), including empty matrices.
fn instance_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Instance> {
    (0..=max_rows)
        .prop_flat_map(move |rows| (Just(rows), rows.max(1)..=max_cols))
        .prop_flat_map(|(rows, cols)| {
            proptest::collection::vec(cell_strategy(), rows * cols)
                .prop_map(move |cells| Instance { rows, cols, cells })
        })
}

fn mutation_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mutation> {
    (
        0u32..9,
        0..rows.max(1),
        0..cols.max(1),
        weight_strategy(),
        proptest::collection::vec(weight_strategy(), rows.max(cols)),
    )
        .prop_map(move |(kind, row, col, weight, mut vec)| match kind {
            0..=2 => Mutation::Cell { row, col, weight },
            3 => Mutation::Forbid { row, col },
            4..=6 => {
                vec.truncate(rows);
                Mutation::Column { col, weights: vec }
            }
            _ => {
                vec.truncate(cols);
                Mutation::Row { row, weights: vec }
            }
        })
}

/// An instance with at least one row plus a chain of mutations sized to it.
fn chain_strategy() -> impl Strategy<Value = (Instance, Vec<Mutation>)> {
    (1usize..=4)
        .prop_flat_map(|rows| (Just(rows), rows..=6))
        .prop_flat_map(|(rows, cols)| {
            let inst = proptest::collection::vec(cell_strategy(), rows * cols)
                .prop_map(move |cells| Instance { rows, cols, cells });
            let muts = proptest::collection::vec(mutation_strategy(rows, cols), 1..=12);
            (inst, muts)
        })
}

/// Solves `weights` three ways and cross-checks totals, matching validity,
/// and the warm certificate. Returns the agreed optimum (or `None` when all
/// three agree the instance is infeasible).
fn check_all_solvers(
    state: &mut HungarianState,
    maximize: bool,
) -> Result<Option<i64>, TestCaseError> {
    let weights = state.weights().clone();
    let warm = state.solve();
    let cold = if maximize {
        max_weight_matching_certified(&weights)
    } else {
        min_cost_matching_certified(&weights)
    };
    let brute = brute_force(&weights, maximize);

    match (&warm, &cold, &brute) {
        (Ok(w), Ok(c), Ok(b)) => {
            prop_assert_eq!(w.matching.total, c.matching.total, "warm vs cold total");
            prop_assert_eq!(w.matching.total, b.total, "warm vs brute total");
            // The warm matching must be a valid injection over allowed edges
            // whose weights really sum to `total`.
            let mut used = vec![false; weights.cols()];
            let mut sum = 0i64;
            for (r, &c) in w.matching.row_to_col.iter().enumerate() {
                prop_assert!(c < weights.cols(), "column {} out of range", c);
                prop_assert!(!used[c], "column {} reused", c);
                used[c] = true;
                let cell = weights.get(r, c);
                prop_assert!(cell.is_some(), "matched forbidden cell ({}, {})", r, c);
                sum += cell.unwrap_or(0);
            }
            prop_assert_eq!(sum, w.matching.total, "total must equal edge sum");
            // The warm duals must verify as an optimality certificate.
            let verdict = verify_dual_certificate(&weights, &w.matching, &w.certificate);
            prop_assert!(verdict.is_ok(), "warm certificate rejected: {:?}", verdict);
            Ok(Some(w.matching.total))
        }
        (
            Err(MatchingError::Infeasible),
            Err(MatchingError::Infeasible),
            Err(MatchingError::Infeasible),
        ) => Ok(None),
        _ => {
            prop_assert!(
                false,
                "solver disagreement: warm={:?} cold={:?} brute={:?}",
                warm.as_ref().map(|s| s.matching.total),
                cold.as_ref().map(|s| s.matching.total),
                brute.as_ref().map(|m| m.total)
            );
            Ok(None)
        }
    }
}

fn apply(state: &mut HungarianState, m: &Mutation) {
    match m {
        Mutation::Cell { row, col, weight } => state.set_weight(*row, *col, *weight),
        Mutation::Forbid { row, col } => state.forbid(*row, *col),
        Mutation::Column { col, weights } => state.set_column(*col, weights),
        Mutation::Row { row, weights } => {
            for (col, &w) in weights.iter().enumerate() {
                state.set_weight(*row, col, w);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cold-start agreement: on a fresh state the warm solver is just a
    /// Hungarian solver, and must agree with the cold path and brute force
    /// on every random instance (both objectives), certificates included.
    #[test]
    fn fresh_state_matches_cold_and_brute(inst in instance_strategy(5, 7), maximize in proptest::bool::ANY) {
        let w = inst.matrix();
        let mut state = HungarianState::new(&w, maximize).expect("shape is solvable");
        check_all_solvers(&mut state, maximize)?;
    }

    /// Mutation chains: one cell / row / column perturbed per step, with the
    /// three-way differential check and a certificate verification after
    /// every single step. This is the property that makes warm-start reuse
    /// safe to ship: no edit sequence may leave stale potentials behind.
    #[test]
    fn mutation_chain_stays_exact((inst, muts) in chain_strategy(), maximize in proptest::bool::ANY) {
        let w = inst.matrix();
        let mut state = HungarianState::new(&w, maximize).expect("shape is solvable");
        check_all_solvers(&mut state, maximize)?;
        for m in &muts {
            apply(&mut state, m);
            check_all_solvers(&mut state, maximize)?;
        }
        // The chain must have driven the warm path, not fresh states.
        let stats = state.stats();
        prop_assert_eq!(stats.solves, muts.len() as u64 + 1);
    }

    /// The pre-solve dual bound must dominate the true optimum (upper bound
    /// when maximizing, lower bound when minimizing) after every mutation,
    /// and collapse to the exact optimum after each solve — the property the
    /// co-design pruning relies on to never skip the true best combo.
    #[test]
    fn objective_bound_brackets_optimum((inst, muts) in chain_strategy(), maximize in proptest::bool::ANY) {
        let w = inst.matrix();
        let mut state = HungarianState::new(&w, maximize).expect("shape is solvable");
        for m in &muts {
            apply(&mut state, m);
            let bound = state.objective_bound();
            match brute_force(state.weights(), maximize) {
                Ok(best) => {
                    if maximize {
                        prop_assert!(bound >= best.total, "bound {} < optimum {}", bound, best.total);
                    } else {
                        prop_assert!(bound <= best.total, "bound {} > optimum {}", bound, best.total);
                    }
                    let solved = state.solve();
                    prop_assert!(solved.is_ok());
                    prop_assert_eq!(state.objective_bound(), best.total, "zero gap after solve");
                }
                Err(_) => {
                    prop_assert_eq!(state.solve().err(), Some(MatchingError::Infeasible));
                }
            }
        }
    }

    /// Degenerate ties: constant matrices make every matching optimal and
    /// every dual step a tie-break. Warm and cold must agree on the total
    /// and produce verifying certificates under column perturbations.
    #[test]
    fn all_tied_instances_stay_consistent(
        rows in 1usize..=4,
        extra in 0usize..=3,
        value in -5i64..=5,
        col in 0usize..=6,
        bump in weight_strategy(),
    ) {
        let cols = rows + extra;
        let w = WeightMatrix::from_fn(rows, cols, |_, _| Some(value));
        let mut state = HungarianState::new(&w, true).expect("solvable");
        check_all_solvers(&mut state, true)?;
        state.set_column(col % cols, &vec![bump; rows]);
        check_all_solvers(&mut state, true)?;
    }

    /// Extreme weights near ±MAX_WEIGHT: potentials and bounds must not
    /// overflow or mis-compare even when the forbidden sentinel dwarfs the
    /// real entries.
    #[test]
    fn extreme_weights_stay_exact(
        signs in proptest::collection::vec(proptest::bool::ANY, 9),
        forbid_at in 0usize..9,
    ) {
        let w = WeightMatrix::from_fn(3, 3, |r, c| {
            let idx = r * 3 + c;
            if idx == forbid_at {
                None
            } else {
                Some(if signs[idx] { EXTREME } else { -EXTREME })
            }
        });
        let mut state = HungarianState::new(&w, true).expect("solvable");
        check_all_solvers(&mut state, true)?;
        // Flip the forbidden cell back to an extreme value and re-check.
        state.set_weight(forbid_at / 3, forbid_at % 3, EXTREME);
        check_all_solvers(&mut state, true)?;
    }
}

/// Warm-start effectiveness is part of the contract, not just correctness:
/// a long chain of single-column edits must re-augment strictly fewer rows
/// than cold re-solves would.
#[test]
fn warm_start_saves_work_on_column_chains() {
    let w = WeightMatrix::from_fn(5, 7, |r, c| Some(((r * 13 + c * 7) % 19) as i64 - 9));
    let mut state = HungarianState::new(&w, true).expect("solvable");
    state.solve().expect("feasible");
    for step in 0u64..100 {
        let col = (step as usize * 3) % 7;
        let weights: Vec<i64> = (0..5)
            .map(|r| ((r as u64 * 11 + step * 5) % 17) as i64 - 8)
            .collect();
        state.set_column(col, &weights);
        let warm = state.solve().expect("feasible");
        let cold = max_weight_matching_certified(state.weights()).expect("feasible");
        assert_eq!(warm.matching.total, cold.matching.total, "step {step}");
    }
    let stats = state.stats();
    assert_eq!(stats.solves, 101);
    assert!(
        stats.rows_reaugmented < stats.rows_total / 2,
        "warm start should skip most row augmentations: {stats:?}"
    );
    assert!(stats.warm_hit_rate() > 0.5, "{stats:?}");
}
