//! The corruption/SAT-resilience trade-off, measured with a real SAT attack.
//!
//! Locks a small adder FU with four different schemes and attacks each with
//! the oracle-guided SAT attack (and the random-query baseline). Shows why
//! the paper must keep the locked-input count tiny — and therefore why the
//! binding step has to squeeze every drop of application error out of those
//! few minterms.
//!
//! Run: `cargo run --release --example sat_attack_demo`

use lockbind::locking::corruption::average_wrong_key_error_rate;
use lockbind::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 3; // 6-bit input space keeps full attacks instant
    let adder = builders::adder_fu(width);
    println!(
        "target: {}-bit adder FU ({} gates)",
        width,
        adder.gate_count()
    );
    println!();

    let schemes: Vec<(&str, LockedNetlist)> = vec![
        (
            "critical-minterm (1 input)",
            lock_critical_minterms(&adder, &[0b010101])?,
        ),
        ("rll (8 key gates)", lock_rll(&adder, 8, 7)?),
        ("anti-sat", lock_anti_sat(&adder)?),
        ("permutation (2 stages)", lock_permutation(&adder, 2)?),
    ];

    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>12}",
        "scheme", "key bits", "eps", "SAT iters", "random-query"
    );
    for (name, locked) in schemes {
        let eps = average_wrong_key_error_rate(&locked, 2 * width, 16, 3);
        let attack = sat_attack(&locked, &AttackConfig::default());
        let rq = random_query_attack(&locked, 48, 11);
        println!(
            "{:<28} {:>8} {:>10.4} {:>10} {:>12}",
            name,
            locked.key_bits(),
            eps,
            attack.iterations,
            if rq.success { "breaks it" } else { "fails" }
        );
        assert!(attack.success, "attacks on these tiny FUs always finish");
    }

    println!();
    println!("low eps  -> many SAT iterations but few errant inputs;");
    println!("high eps -> heavy corruption but broken in a handful of queries.");
    println!("Security-aware binding (see `quickstart`) escapes the dilemma by");
    println!("making the few locked inputs occur *often* at the locked FU.");
    Ok(())
}
