//! Domain example: protecting the JPEG decode/merge path.
//!
//! The `jdmerge*` kernels dominate a JPEG decoder's datapath. This example
//! sweeps locking configurations (locked FU count x locked input count) on
//! `jdmerge4`, co-designs the binding/locking for each, and reports how the
//! error-vs-baseline ratio behaves — a per-kernel slice of the paper's
//! Fig. 5.
//!
//! Run: `cargo run --release --example jpeg_pipeline`

use lockbind::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Kernel::Jdmerge4.benchmark(400, 77);
    let alloc = Allocation::new(3, 3);
    let schedule = schedule_list(&bench.dfg, &alloc)?;
    let profile = OccurrenceProfile::from_trace(&bench.dfg, &bench.trace)?;
    let switching = SwitchingProfile::from_trace(&bench.dfg, &bench.trace)?;

    let area = bind_area_aware(&bench.dfg, &schedule, &alloc)?;
    let power = bind_power_aware(&bench.dfg, &schedule, &alloc, &switching)?;

    println!("jdmerge4: YCbCr->RGB upsample-merge, 4-pixel variant");
    println!(
        "{} ops over {} cycles on {}",
        bench.dfg.num_ops(),
        schedule.num_cycles(),
        alloc
    );
    println!();
    println!("co-designed multiplier locking (errors over 400 frames):");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "locked FUs", "inputs/FU", "co-design E", "area E", "power E", "vs area", "vs power"
    );

    let candidates = profile.top_candidates_among(&bench.dfg.ops_of_class(FuClass::Multiplier), 10);
    for locked_fus in 1..=3usize {
        let fus: Vec<FuId> = (0..locked_fus)
            .map(|i| FuId::new(FuClass::Multiplier, i))
            .collect();
        for inputs in 1..=3usize {
            let design = codesign_heuristic(
                &bench.dfg,
                &schedule,
                &alloc,
                &profile,
                &fus,
                inputs,
                &candidates,
            )?;
            let e_area = expected_application_errors(&area, &profile, &design.spec);
            let e_power = expected_application_errors(&power, &profile, &design.spec);
            println!(
                "{:>10} {:>10} {:>12} {:>12} {:>12} {:>9.1}x {:>9.1}x",
                locked_fus,
                inputs,
                design.errors,
                e_area,
                e_power,
                (1.0 + design.errors as f64) / (1.0 + e_area as f64),
                (1.0 + design.errors as f64) / (1.0 + e_power as f64),
            );
        }
    }

    // Overhead of the strongest configuration vs the baselines (Fig. 6 view).
    let fus: Vec<FuId> = (0..3).map(|i| FuId::new(FuClass::Multiplier, i)).collect();
    let best = codesign_heuristic(
        &bench.dfg,
        &schedule,
        &alloc,
        &profile,
        &fus,
        3,
        &candidates,
    )?;
    let regs_sec = metrics::register_count(&bench.dfg, &schedule, &best.binding, &alloc);
    let regs_area = metrics::register_count(&bench.dfg, &schedule, &area, &alloc);
    let sw_sec = metrics::switching(&schedule, &best.binding, &alloc, &switching).rate;
    let sw_power = metrics::switching(&schedule, &power, &alloc, &switching).rate;
    println!();
    println!(
        "overhead of the 3-FU/3-input co-design: {:+} registers, {:+.4} switching rate",
        regs_sec as i64 - regs_area as i64,
        sw_sec - sw_power
    );
    Ok(())
}
