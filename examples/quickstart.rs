//! Quickstart: the paper's core claim in ~60 lines.
//!
//! Takes one MediaBench-style kernel, profiles its typical workload, and
//! shows how much more application-level error the *same* SAT-resilient
//! locking configuration causes when the binding is chosen security-aware
//! (obfuscation-aware binding and binding-obfuscation co-design) instead of
//! area/power-aware.
//!
//! Run: `cargo run --release --example quickstart`

use lockbind::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A FIR filter kernel with a synthetic "typical workload" trace.
    let bench = Kernel::Fir.benchmark(300, 42);
    let (adds, muls) = bench.dfg.op_mix();
    println!(
        "kernel {}: {adds} adder-class ops, {muls} multiplies",
        bench.dfg.name()
    );

    // HLS front end: schedule onto 3 adders + 3 multipliers, profile the
    // workload to get the K matrix (minterm occurrences per operation).
    let alloc = Allocation::new(3, 3);
    let schedule = schedule_list(&bench.dfg, &alloc)?;
    let profile = OccurrenceProfile::from_trace(&bench.dfg, &bench.trace)?;
    let switching = SwitchingProfile::from_trace(&bench.dfg, &bench.trace)?;
    println!("scheduled into {} cycles", schedule.num_cycles());

    // The SAT-resilience budget: lock ONE multiplier with TWO minterms,
    // chosen from the 10 most common multiplier-input minterms.
    let mul_ops = bench.dfg.ops_of_class(FuClass::Multiplier);
    let candidates = profile.top_candidates_among(&mul_ops, 10);
    let locked_fu = FuId::new(FuClass::Multiplier, 0);

    // Security-oblivious baselines.
    let area = bind_area_aware(&bench.dfg, &schedule, &alloc)?;
    let power = bind_power_aware(&bench.dfg, &schedule, &alloc, &switching)?;

    // Problem 1: locked inputs fixed a priori (take the top-2 candidates).
    let fixed = LockingSpec::new(&alloc, vec![(locked_fu, candidates[..2].to_vec())])?;
    let obf = bind_obfuscation_aware(&bench.dfg, &schedule, &alloc, &profile, &fixed)?;

    // Problem 2: co-design chooses the best 2 of the 10 candidates.
    let codesign = codesign_heuristic(
        &bench.dfg,
        &schedule,
        &alloc,
        &profile,
        &[locked_fu],
        2,
        &candidates,
    )?;

    let e = |binding: &Binding, spec: &LockingSpec| {
        expected_application_errors(binding, &profile, spec)
    };
    println!();
    println!("expected application errors over the 300-frame workload");
    println!("(identical locking configuration, different binding):");
    println!("  area-aware binding  : {:6}", e(&area, &fixed));
    println!("  power-aware binding : {:6}", e(&power, &fixed));
    println!(
        "  obfuscation-aware   : {:6}   <- Problem 1 (Sec. IV)",
        e(&obf, &fixed)
    );
    println!(
        "  co-design (heuristic): {:6}   <- Problem 2 (Sec. V), inputs chosen too",
        codesign.errors
    );

    // Same number of locked inputs => same Eqn.-1 SAT resilience; the
    // security-aware bindings get their corruption "for free".
    let eps = lockbind::locking::epsilon_for_locked_inputs(4, 2 * bench.dfg.width());
    let lambda = expected_sat_iterations(2 * 2 * bench.dfg.width(), 1, eps);
    println!();
    println!("analytic SAT resilience of this configuration (Eqn. 1): ~{lambda:.0} iterations");

    // Realize the locked multiplier as a gate-level netlist.
    let modules = realize_locked_modules(&codesign.spec, bench.dfg.width())?;
    let (_, locked) = &modules[0];
    println!(
        "locked multiplier netlist: {} gates, {} key bits",
        locked.netlist().gate_count(),
        locked.key_bits()
    );
    Ok(())
}
