//! Bring your own kernel: the full flow on a hand-built DFG.
//!
//! Shows the builder API end-to-end for users whose design is not one of
//! the bundled MediaBench kernels: build a DFG, supply your own workload
//! trace, schedule/bind/lock it, then *verify at the gate level* that the
//! realized locked module corrupts exactly the chosen minterms.
//!
//! Run: `cargo run --release --example custom_kernel`

use lockbind::locking::corruption::corrupted_inputs;
use lockbind::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small complex-magnitude-squared kernel: |a + jb|^2 = a*a + b*b,
    // plus a scaled cross term — 3 multiplies, a few adds.
    let mut dfg = Dfg::new(8);
    let a = dfg.input("re");
    let b = dfg.input("im");
    let aa = dfg.op(OpKind::Mul, a, a);
    let bb = dfg.op(OpKind::Mul, b, b);
    let cross = dfg.op(OpKind::Mul, a, b);
    let mag = dfg.op(OpKind::Add, aa.into(), bb.into());
    let scaled = dfg.op(OpKind::Shr, cross.into(), ValueRef::Const(1));
    let out = dfg.op(OpKind::Add, mag.into(), scaled.into());
    dfg.mark_output(out);
    dfg.set_name("cmag2");

    // Your own workload: narrowband signal, so re/im hover near +-16.
    let trace: Trace = (0..500u64)
        .map(|t| {
            let re = 16 + (t * 7) % 5;
            let im = 240 + (t * 13) % 3; // small negative in 2s compl.
            vec![re, im]
        })
        .collect();

    let alloc = Allocation::new(2, 2);
    let schedule = schedule_list(&dfg, &alloc)?;
    let profile = OccurrenceProfile::from_trace(&dfg, &trace)?;

    // Co-design a single locked multiplier with 2 locked inputs.
    let candidates = profile.top_candidates_among(&dfg.ops_of_class(FuClass::Multiplier), 8);
    let design = codesign_heuristic(
        &dfg,
        &schedule,
        &alloc,
        &profile,
        &[FuId::new(FuClass::Multiplier, 0)],
        2,
        &candidates,
    )?;
    println!(
        "co-design chose {} with {} expected error injections over 500 frames",
        design.spec, design.errors
    );

    // Realize and verify at the gate level.
    let modules = realize_locked_modules(&design.spec, dfg.width())?;
    let (fu, locked) = &modules[0];
    println!(
        "{fu}: locked multiplier, {} gates, {} key bits",
        locked.netlist().gate_count(),
        locked.key_bits()
    );

    // Correct key: functionally intact (spot-check a few points).
    for (x, y) in [(3u64, 5u64), (16, 18), (255, 1)] {
        assert_eq!(
            locked.eval_with_key(&[x, y], 8, locked.correct_key()),
            vec![(x * y) & 0xFF]
        );
    }

    // Wrong key: exactly the chosen minterms (plus the wrong key's restore
    // patterns) are corrupted.
    let mut wrong = locked.correct_key().to_vec();
    wrong[0] = !wrong[0];
    wrong[17] = !wrong[17];
    let errs = corrupted_inputs(locked, &wrong, 16);
    println!("wrong key corrupts {} of 65536 input minterms:", errs.len());
    for m in design.spec.minterms_of(*fu).expect("locked") {
        let pattern = minterm_to_pattern(*m, 8);
        let (a, b) = m.unpack(8);
        assert!(
            errs.contains(&pattern),
            "chosen minterm ({a},{b}) must be corrupted"
        );
        println!("  operand pair ({a:3}, {b:3}) -> errant output (as designed)");
    }
    println!("everything checks out: binding maximizes how often those pairs occur.");
    Ok(())
}
