//! The Sec. V-C design methodology as a designer would drive it.
//!
//! "I need locking to corrupt at least 10% of DCT invocations, and I want
//! at least a million expected SAT iterations" — the methodology tunes the
//! locked-input count with co-design, checks Eqn. 1, and tells you whether
//! you must additionally pay for an exponential-SAT-runtime scheme.
//!
//! Run: `cargo run --release --example methodology`

use lockbind::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 300usize;
    let bench = Kernel::Dct.benchmark(frames, 5);
    let alloc = Allocation::new(3, 3);
    let schedule = schedule_list(&bench.dfg, &alloc)?;
    let profile = OccurrenceProfile::from_trace(&bench.dfg, &bench.trace)?;

    let candidates = profile.top_candidates_among(&bench.dfg.ops_of_class(FuClass::Multiplier), 10);
    let fus = vec![
        FuId::new(FuClass::Multiplier, 0),
        FuId::new(FuClass::Multiplier, 1),
    ];

    for (label, min_errors, min_lambda) in [
        ("modest  ", frames as u64 / 20, 1e4),
        ("standard", frames as u64 / 10, 1e6),
        ("paranoid", frames as u64 / 5, 1e12),
    ] {
        let goals = DesignGoals {
            min_application_errors: min_errors,
            min_sat_iterations: min_lambda,
            max_inputs_per_fu: 5,
        };
        print!("{label} (≥{min_errors} errors, λ ≥ {min_lambda:.0e}): ");
        match design_lock(
            &bench.dfg,
            &schedule,
            &alloc,
            &profile,
            &fus,
            &candidates,
            &goals,
        ) {
            Ok(out) => {
                println!(
                    "{} inputs/FU -> {} errors, λ ≈ {:.2e}{}",
                    out.inputs_per_fu,
                    out.design.errors,
                    out.sat_iterations,
                    if out.needs_exponential_scheme {
                        "  [augment with permutation-network locking]"
                    } else {
                        ""
                    }
                );
                if out.needs_exponential_scheme {
                    // Show what the augmentation costs at the gate level.
                    let mul = builders::multiplier_fu(bench.dfg.width());
                    let perm = lock_permutation(&mul, 3)?;
                    println!(
                        "          permutation stage cost: {:+.0}% gates, {} extra key bits",
                        perm.area_overhead() * 100.0,
                        perm.key_bits()
                    );
                }
            }
            Err(e) => println!("unreachable: {e}"),
        }
    }
    Ok(())
}
