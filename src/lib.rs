//! # lockbind
//!
//! A Rust implementation of *"A Resource Binding Approach to Logic
//! Obfuscation"* (Zuzak, Liu, Srivastava — DAC 2021): security-aware
//! resource binding that lets SAT-resilient logic locking inject enough
//! application-level error to actually protect an IC.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's algorithms: obfuscation-aware binding,
//!   binding–obfuscation co-design, the area/power-aware baselines, and the
//!   Sec. V-C design methodology.
//! * [`hls`] — the HLS substrate: DFGs, scheduling, allocation, bindings,
//!   trace-driven profiling (the `K` matrix), and datapath metrics.
//! * [`mediabench`] — the 11 MediaBench-style benchmark kernels with
//!   synthetic typical workloads.
//! * [`netlist`] — gate-level netlists, arithmetic FU builders, simulation,
//!   and CNF export.
//! * [`locking`] — critical-minterm (SFLL-style), RLL, Anti-SAT, and
//!   permutation-network locking, plus the Eqn. 1 resilience model.
//! * [`sat`] — a from-scratch CDCL SAT solver.
//! * [`attacks`] — the oracle-guided SAT attack and a random-query baseline.
//! * [`matching`] — Hungarian max-weight bipartite matching.
//!
//! ## Quickstart
//!
//! ```
//! use lockbind::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Pick a benchmark kernel with its typical workload.
//! let bench = Kernel::Fir.benchmark(200, 42);
//!
//! // 2. Schedule it onto 3 adders + 3 multipliers and profile the workload.
//! let alloc = Allocation::new(3, 3);
//! let schedule = schedule_list(&bench.dfg, &alloc)?;
//! let profile = OccurrenceProfile::from_trace(&bench.dfg, &bench.trace)?;
//!
//! // 3. Co-design the binding and the locked inputs for one locked adder.
//! let candidates = profile.top_candidates_among(
//!     &bench.dfg.ops_of_class(FuClass::Adder), 10);
//! let fus = [FuId::new(FuClass::Adder, 0)];
//! let design = codesign_heuristic(
//!     &bench.dfg, &schedule, &alloc, &profile, &fus, 2, &candidates)?;
//! assert!(design.errors > 0);
//!
//! // 4. Realize the locked adder as a gate-level netlist.
//! let modules = realize_locked_modules(&design.spec, bench.dfg.width())?;
//! assert_eq!(modules.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lockbind_attacks as attacks;
pub use lockbind_core as core;
pub use lockbind_hls as hls;
pub use lockbind_locking as locking;
pub use lockbind_matching as matching;
pub use lockbind_mediabench as mediabench;
pub use lockbind_netlist as netlist;
pub use lockbind_sat as sat;

/// One-stop imports for the common flow (see the crate-level example).
pub mod prelude {
    pub use lockbind_attacks::{
        approximate_sat_attack, random_query_attack, sat_attack, AttackConfig,
    };
    pub use lockbind_core::{
        application_impact, bind_area_aware, bind_exhaustive, bind_obfuscation_aware,
        bind_power_aware, bind_random, codesign_heuristic, codesign_optimal, design_lock,
        expected_application_errors, locked_sim, minterm_to_pattern, realize_locked_modules,
        ApplicationImpact, DesignGoals, LockingSpec,
    };
    pub use lockbind_hls::{
        bind_naive, metrics, schedule_alap, schedule_asap, schedule_force_directed, schedule_list,
        Allocation, Binding, Dfg, FuClass, FuId, Minterm, OccurrenceProfile, OpId, OpKind,
        Schedule, SwitchingProfile, Trace, ValueRef,
    };
    pub use lockbind_locking::{
        expected_sat_iterations, lock_anti_sat, lock_compound, lock_critical_minterms,
        lock_permutation, lock_rll, lock_sfll_hd, LockedNetlist,
    };
    pub use lockbind_mediabench::{
        synthetic_benchmark, trace_stats, Benchmark, Kernel, SkewParams,
    };
    pub use lockbind_netlist::{builders, Netlist};
    pub use lockbind_sat::{SolveResult, Solver};
}
